#ifndef BLOSSOMTREE_XML_DOCUMENT_H_
#define BLOSSOMTREE_XML_DOCUMENT_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace blossomtree {
namespace xml {

/// \brief Index of a node inside a Document. Node ids are assigned in
/// *document (preorder) order*, so `a < b` iff node a precedes node b in
/// document order — the `<<` operator of XPath is integer comparison.
using NodeId = uint32_t;

/// \brief Interned tag-name identifier (see TagDictionary).
using TagId = uint32_t;

constexpr NodeId kNullNode = static_cast<NodeId>(-1);
constexpr TagId kNullTag = static_cast<TagId>(-1);

/// \brief Kind of a tree node. Attributes are stored out-of-band on their
/// owning element, not as tree nodes, matching the region-encoding papers.
enum class NodeKind : uint8_t {
  kElement = 0,
  kText = 1,
};

/// \brief Bidirectional map between tag names and dense TagIds.
class TagDictionary {
 public:
  /// \brief Returns the id for `name`, interning it if new.
  TagId Intern(std::string_view name);

  /// \brief Returns the id for `name`, or kNullTag if never interned.
  TagId Lookup(std::string_view name) const;

  /// \brief Returns the name for a valid id.
  const std::string& Name(TagId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, TagId> ids_;
};

/// \brief One attribute of an element: both strings live in the document's
/// text pool.
struct Attribute {
  uint32_t name_offset;
  uint32_t name_len;
  uint32_t value_offset;
  uint32_t value_len;
};

/// \brief One fixed-width node record of the *external* document layout
/// (the decoded paged form the BTSX v2 file persists; see DESIGN.md §13):
/// everything the structural accessors need, 16 bytes per node in document
/// order. First-child / next-sibling are derived from subtree extents, so
/// no tree pointers are stored.
struct PackedNodeRecord {
  TagId tag;           ///< kNullTag for text nodes.
  NodeId subtree_end;  ///< Largest NodeId in this node's subtree.
  uint32_t level;      ///< Depth (root = 0).
  uint32_t text_ref;   ///< Text-span index for text nodes, else UINT32_MAX.
};
static_assert(sizeof(PackedNodeRecord) == 16, "on-disk record is 16 bytes");
static_assert(std::is_trivially_copyable_v<PackedNodeRecord>,
              "records are memcpy'd out of mapped files");

/// \brief (offset, length) of one text node's payload in the external text
/// pool; one entry per text node, indexed by PackedNodeRecord::text_ref.
struct ExternalTextSpan {
  uint32_t offset;
  uint32_t length;
};
static_assert(sizeof(ExternalTextSpan) == 8, "on-disk text span is 8 bytes");

/// \brief Attribute ownership of the external layout: element `node` owns
/// attrs [first, last). Sorted by `node` for binary search.
struct ExternalAttrOwner {
  NodeId node;
  uint32_t first;
  uint32_t last;
};
static_assert(sizeof(ExternalAttrOwner) == 12, "on-disk owner is 12 bytes");

/// \brief A complete externally owned document image — the BTSX v2 mapped
/// layout. All pointers are *borrowed*: they must outlive the Document that
/// adopts them (storage::DiskStore owns both the mapping and the Document).
///
/// AdoptExternal trusts these arrays to be internally consistent (record
/// extents nested, spans inside the pool, streams sorted); callers mapping
/// untrusted bytes must run storage::ValidateBtsx2Deep first.
struct ExternalLayout {
  size_t num_nodes = 0;
  const PackedNodeRecord* records = nullptr;  ///< num_nodes entries.
  const NodeId* parent = nullptr;             ///< num_nodes entries.
  const ExternalTextSpan* text_spans = nullptr;
  size_t num_text_spans = 0;
  const char* text_pool = nullptr;
  size_t text_pool_bytes = 0;
  const ExternalAttrOwner* attr_owners = nullptr;  ///< Sorted by node.
  size_t num_attr_owners = 0;
  const Attribute* attrs = nullptr;
  size_t num_attrs = 0;
  const uint32_t* tag_recursion = nullptr;       ///< One per tag.
  const uint64_t* tag_stream_offsets = nullptr;  ///< tag count + 1 entries.
  const NodeId* tag_streams = nullptr;           ///< num_elements entries.
  /// Tag dictionary in TagId order (interned on adopt).
  std::vector<std::string> tag_names;
  /// Precomputed statistics (ComputeStats equivalents, stored in the file).
  size_t num_elements = 0;
  uint32_t max_depth = 0;
  double avg_depth = 0;
  uint32_t max_recursion = 0;
};

/// \brief An XML document in structure-of-arrays layout.
///
/// Each node carries:
///  - its kind and tag id (elements) or text payload (text nodes),
///  - tree pointers (parent / first child / next sibling),
///  - its region label: `start` = its own NodeId (preorder rank),
///    `end` = the largest NodeId in its subtree, `level` = depth from the
///    root (root is level 0).
///
/// Region labels make the classic structural predicates O(1):
///  - `IsAncestor(a, d)`  ⇔  a < d && d <= end(a)
///  - document order      ⇔  NodeId comparison
///
/// Documents come into existence one of two ways:
///  - *built* in document order via BeginElement/AddText/EndElement (the
///    parser and the data generators) and frozen by Finish(), or
///  - *adopted* from an external BTSX v2 image via AdoptExternal(): the
///    structural arrays stay in the (typically mmap'd) image and every
///    accessor reads them zero-copy, so opening is O(open), not O(parse).
/// Either way the document is immutable afterwards and the engine cannot
/// tell the two apart.
class Document {
 public:
  Document() = default;

  // -- Construction (document order) ----------------------------------------

  /// \brief Opens a new element with tag `name`; returns its NodeId.
  NodeId BeginElement(std::string_view name);

  /// \brief Adds an attribute to the most recently opened element.
  void AddAttribute(std::string_view name, std::string_view value);

  /// \brief Adds a text node under the currently open element.
  NodeId AddText(std::string_view text);

  /// \brief Closes the most recently opened element.
  void EndElement();

  /// \brief Verifies the builder stack is empty and finalizes statistics.
  /// Also stamps the document's generation (below).
  Status Finish();

  /// \brief Adopts an external (disk-resident) image instead of building:
  /// the document becomes a zero-copy view over `layout`'s arrays, which
  /// must stay alive and unchanged for this object's lifetime. Only valid
  /// on a fresh Document (nothing built, not finished). Stamps a fresh
  /// process generation — reopening the same file twice yields two
  /// generations, exactly like re-parsing the same bytes does.
  Status AdoptExternal(ExternalLayout layout);

  /// \brief True when backed by an adopted external image.
  bool external() const { return ext_.records != nullptr; }

  /// \brief Process-unique generation stamp, assigned by Finish() (or
  /// AdoptExternal()) from a monotonically increasing process-wide counter
  /// starting at 1; 0 means "not finished". Two Document objects never
  /// share a generation, so (generation, node range) is a stable identity
  /// for cached NoK scan results (DESIGN.md §11): rebuilding or reloading a
  /// document — even from identical bytes — yields a fresh generation and
  /// thereby invalidates every cached result keyed to the old one.
  uint64_t generation() const { return generation_; }

  // -- Structure accessors ---------------------------------------------------

  size_t NumNodes() const {
    return ext_.records != nullptr ? ext_.num_nodes : kind_.size();
  }
  bool empty() const { return NumNodes() == 0; }

  /// \brief The document root element (first node), or kNullNode if empty.
  NodeId Root() const { return empty() ? kNullNode : 0; }

  NodeKind Kind(NodeId n) const {
    if (ext_.records != nullptr) {
      return ext_.records[n].tag == kNullTag ? NodeKind::kText
                                             : NodeKind::kElement;
    }
    return kind_[n];
  }
  bool IsElement(NodeId n) const { return Kind(n) == NodeKind::kElement; }

  /// \brief Tag id of an element node; kNullTag for text nodes.
  TagId Tag(NodeId n) const {
    return ext_.records != nullptr ? ext_.records[n].tag : tag_[n];
  }

  /// \brief Tag name of an element node.
  const std::string& TagName(NodeId n) const { return tags_.Name(Tag(n)); }

  NodeId Parent(NodeId n) const {
    return ext_.records != nullptr ? ext_.parent[n] : parent_[n];
  }

  /// \brief First child in document order. The external path derives it
  /// from the subtree extent (the paper's succinct-navigation identity:
  /// a non-leaf's first child is the next node in preorder).
  NodeId FirstChild(NodeId n) const {
    if (ext_.records == nullptr) return first_child_[n];
    return ext_.records[n].subtree_end > n ? n + 1 : kNullNode;
  }

  /// \brief Next sibling in document order; derived on the external path
  /// (the node just past this subtree, iff it sits at the same level).
  NodeId NextSibling(NodeId n) const {
    if (ext_.records == nullptr) return next_sibling_[n];
    NodeId next = ext_.records[n].subtree_end + 1;
    if (next >= ext_.num_nodes) return kNullNode;
    return ext_.records[next].level == ext_.records[n].level ? next
                                                             : kNullNode;
  }

  /// \brief Largest NodeId inside n's subtree (n itself if leaf).
  NodeId SubtreeEnd(NodeId n) const {
    return ext_.records != nullptr ? ext_.records[n].subtree_end
                                   : subtree_end_[n];
  }

  /// \brief Depth of n; the root has level 0.
  uint32_t Level(NodeId n) const {
    return ext_.records != nullptr ? ext_.records[n].level : level_[n];
  }

  /// \brief True iff `anc` is a proper ancestor of `desc`.
  bool IsAncestor(NodeId anc, NodeId desc) const {
    return anc < desc && desc <= SubtreeEnd(anc);
  }

  /// \brief True iff `anc` is `desc` or a proper ancestor of it.
  bool IsAncestorOrSelf(NodeId anc, NodeId desc) const {
    return anc <= desc && desc <= SubtreeEnd(anc);
  }

  /// \brief Text payload of a text node.
  std::string_view Text(NodeId n) const;

  /// \brief Concatenation of all descendant text (XPath string-value).
  std::string StringValue(NodeId n) const;

  /// \brief Attributes of an element, as (name, value) views.
  std::vector<std::pair<std::string_view, std::string_view>> Attributes(
      NodeId n) const;

  /// \brief Value of attribute `name` on element `n`; empty view + false if
  /// absent.
  bool AttributeValue(NodeId n, std::string_view name,
                      std::string_view* value) const;

  const TagDictionary& tags() const { return tags_; }
  TagDictionary& mutable_tags() { return tags_; }

  /// \brief Contiguous per-node tag array of a *built* document (kNullTag
  /// at text nodes), or nullptr for external documents — the stride-4
  /// input of the exec::FilterTagEq scan kernel.
  const TagId* TagArray() const {
    return ext_.records != nullptr ? nullptr : tag_.data();
  }

  /// \brief Adopted record stream of an *external* document, or nullptr
  /// for built documents — the stride-16 input of the
  /// exec::FilterTagEqRecords scan kernel.
  const PackedNodeRecord* ExternalRecords() const { return ext_.records; }

  /// \brief All element nodes with tag id `t`, in document order.
  ///
  /// This is the "tag-name index" required by the join-based approaches
  /// (TwigStack, structural merge join). Built lazily on first use, at
  /// most once (std::call_once), so concurrent queries over one shared
  /// document — the service::Corpus regime — may all call this without
  /// external locking. External documents return a zero-copy span over the
  /// per-tag node-id streams persisted in the BTSX v2 file: no build pass
  /// at all, which is most of what makes opening O(open).
  std::span<const NodeId> TagIndex(TagId t) const;

  // -- Statistics (valid after Finish) ---------------------------------------

  /// \brief Number of element nodes.
  size_t NumElements() const { return num_elements_; }
  /// \brief Maximum element depth (root = 1), matching Table 1's convention.
  uint32_t MaxDepth() const { return max_depth_; }
  /// \brief Average element depth.
  double AvgDepth() const { return avg_depth_; }
  /// \brief Maximum same-tag nesting degree over all tags: 1 means
  /// non-recursive (no element is a descendant of a same-tag element).
  uint32_t MaxRecursionDegree() const { return max_recursion_; }
  /// \brief True iff some element has a same-tag proper ancestor.
  bool IsRecursive() const { return max_recursion_ > 1; }
  /// \brief Per-tag nesting degree: 1 = elements of this tag never nest.
  /// The optimizer's fine-grained rule uses this — pipelined //-joins are
  /// order-preserving whenever the *outer* tag does not nest, even if the
  /// document is recursive elsewhere.
  uint32_t TagRecursionDegree(TagId t) const {
    if (ext_.records != nullptr) {
      return t < tags_.size() ? ext_.tag_recursion[t] : 0;
    }
    return t < tag_recursion_.size() ? tag_recursion_[t] : 0;
  }
  /// \brief Approximate in-memory size of the structural arrays in bytes
  /// (for an external document: of the mapped arrays it views).
  size_t StructureBytes() const;
  /// \brief Total bytes of text payload.
  size_t TextBytes() const {
    return ext_.records != nullptr ? ext_.text_pool_bytes : text_pool_.size();
  }

 private:
  void ComputeStats();

  /// Binary-searches the external attr-owner table; nullptr when `n` owns
  /// no attributes.
  const ExternalAttrOwner* FindExternalAttrs(NodeId n) const;

  TagDictionary tags_;
  std::vector<NodeKind> kind_;
  std::vector<TagId> tag_;
  std::vector<NodeId> parent_;
  std::vector<NodeId> first_child_;
  std::vector<NodeId> last_child_;  // builder-only helper
  std::vector<NodeId> next_sibling_;
  std::vector<NodeId> subtree_end_;
  std::vector<uint32_t> level_;

  // Text payloads: (offset, len) into text_pool_.
  std::vector<std::pair<uint32_t, uint32_t>> text_span_;
  std::string text_pool_;

  // Attributes, grouped per element: element -> [first, last) in attrs_.
  std::unordered_map<NodeId, std::pair<uint32_t, uint32_t>> attr_range_;
  std::vector<Attribute> attrs_;

  std::vector<NodeId> open_stack_;

  // Stats.
  size_t num_elements_ = 0;
  uint32_t max_depth_ = 0;
  double avg_depth_ = 0;
  uint32_t max_recursion_ = 0;
  std::vector<uint32_t> tag_recursion_;

  // Adopted external image; records == nullptr for built documents. Every
  // accessor branches on that pointer, keeping the built path's codegen
  // (one test + the original load) essentially unchanged.
  ExternalLayout ext_;

  // Lazy per-tag document-order index, built under tag_index_once_ (the
  // call_once makes Document non-copyable, which it semantically always
  // was: nothing may copy a finished document's identity/generation).
  // External documents never build it — their index is in the file.
  mutable std::vector<std::vector<NodeId>> tag_index_;
  mutable std::once_flag tag_index_once_;

  uint64_t generation_ = 0;  ///< Stamped by Finish(); 0 = unfinished.
};

/// \brief 1-based rank of element `n` among its parent's element children
/// that match `tag` ("*" = any element) — the counting positional
/// predicates use (`//book[2]` selects each parent's second book child).
/// The document root has rank 1.
uint32_t SiblingRank(const Document& doc, NodeId n, std::string_view tag);

}  // namespace xml
}  // namespace blossomtree

#endif  // BLOSSOMTREE_XML_DOCUMENT_H_
