#ifndef BLOSSOMTREE_XML_DOCUMENT_H_
#define BLOSSOMTREE_XML_DOCUMENT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace blossomtree {
namespace xml {

/// \brief Index of a node inside a Document. Node ids are assigned in
/// *document (preorder) order*, so `a < b` iff node a precedes node b in
/// document order — the `<<` operator of XPath is integer comparison.
using NodeId = uint32_t;

/// \brief Interned tag-name identifier (see TagDictionary).
using TagId = uint32_t;

constexpr NodeId kNullNode = static_cast<NodeId>(-1);
constexpr TagId kNullTag = static_cast<TagId>(-1);

/// \brief Kind of a tree node. Attributes are stored out-of-band on their
/// owning element, not as tree nodes, matching the region-encoding papers.
enum class NodeKind : uint8_t {
  kElement = 0,
  kText = 1,
};

/// \brief Bidirectional map between tag names and dense TagIds.
class TagDictionary {
 public:
  /// \brief Returns the id for `name`, interning it if new.
  TagId Intern(std::string_view name);

  /// \brief Returns the id for `name`, or kNullTag if never interned.
  TagId Lookup(std::string_view name) const;

  /// \brief Returns the name for a valid id.
  const std::string& Name(TagId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, TagId> ids_;
};

/// \brief One attribute of an element: both strings live in the document's
/// text pool.
struct Attribute {
  uint32_t name_offset;
  uint32_t name_len;
  uint32_t value_offset;
  uint32_t value_len;
};

/// \brief An in-memory XML document in structure-of-arrays layout.
///
/// Each node carries:
///  - its kind and tag id (elements) or text payload (text nodes),
///  - tree pointers (parent / first child / next sibling),
///  - its region label: `start` = its own NodeId (preorder rank),
///    `end` = the largest NodeId in its subtree, `level` = depth from the
///    root (root is level 0).
///
/// Region labels make the classic structural predicates O(1):
///  - `IsAncestor(a, d)`  ⇔  a < d && d <= end(a)
///  - document order      ⇔  NodeId comparison
///
/// Documents are built in document order via BeginElement/AddText/EndElement
/// (used by the parser and the data generators) and are immutable afterwards.
class Document {
 public:
  Document() = default;

  // -- Construction (document order) ----------------------------------------

  /// \brief Opens a new element with tag `name`; returns its NodeId.
  NodeId BeginElement(std::string_view name);

  /// \brief Adds an attribute to the most recently opened element.
  void AddAttribute(std::string_view name, std::string_view value);

  /// \brief Adds a text node under the currently open element.
  NodeId AddText(std::string_view text);

  /// \brief Closes the most recently opened element.
  void EndElement();

  /// \brief Verifies the builder stack is empty and finalizes statistics.
  /// Also stamps the document's generation (below).
  Status Finish();

  /// \brief Process-unique generation stamp, assigned by Finish() from a
  /// monotonically increasing process-wide counter starting at 1; 0 means
  /// "not finished". Two Document objects never share a generation, so
  /// (generation, node range) is a stable identity for cached NoK scan
  /// results (DESIGN.md §11): rebuilding or reloading a document — even
  /// from identical bytes — yields a fresh generation and thereby
  /// invalidates every cached result keyed to the old one.
  uint64_t generation() const { return generation_; }

  // -- Structure accessors ---------------------------------------------------

  size_t NumNodes() const { return kind_.size(); }
  bool empty() const { return kind_.empty(); }

  /// \brief The document root element (first node), or kNullNode if empty.
  NodeId Root() const { return kind_.empty() ? kNullNode : 0; }

  NodeKind Kind(NodeId n) const { return kind_[n]; }
  bool IsElement(NodeId n) const { return kind_[n] == NodeKind::kElement; }

  /// \brief Tag id of an element node; kNullTag for text nodes.
  TagId Tag(NodeId n) const { return tag_[n]; }

  /// \brief Tag name of an element node.
  const std::string& TagName(NodeId n) const { return tags_.Name(tag_[n]); }

  NodeId Parent(NodeId n) const { return parent_[n]; }
  NodeId FirstChild(NodeId n) const { return first_child_[n]; }
  NodeId NextSibling(NodeId n) const { return next_sibling_[n]; }

  /// \brief Largest NodeId inside n's subtree (n itself if leaf).
  NodeId SubtreeEnd(NodeId n) const { return subtree_end_[n]; }

  /// \brief Depth of n; the root has level 0.
  uint32_t Level(NodeId n) const { return level_[n]; }

  /// \brief True iff `anc` is a proper ancestor of `desc`.
  bool IsAncestor(NodeId anc, NodeId desc) const {
    return anc < desc && desc <= subtree_end_[anc];
  }

  /// \brief True iff `anc` is `desc` or a proper ancestor of it.
  bool IsAncestorOrSelf(NodeId anc, NodeId desc) const {
    return anc <= desc && desc <= subtree_end_[anc];
  }

  /// \brief Text payload of a text node.
  std::string_view Text(NodeId n) const;

  /// \brief Concatenation of all descendant text (XPath string-value).
  std::string StringValue(NodeId n) const;

  /// \brief Attributes of an element, as (name, value) views.
  std::vector<std::pair<std::string_view, std::string_view>> Attributes(
      NodeId n) const;

  /// \brief Value of attribute `name` on element `n`; empty view + false if
  /// absent.
  bool AttributeValue(NodeId n, std::string_view name,
                      std::string_view* value) const;

  const TagDictionary& tags() const { return tags_; }
  TagDictionary& mutable_tags() { return tags_; }

  /// \brief All element nodes with tag id `t`, in document order.
  ///
  /// This is the "tag-name index" required by the join-based approaches
  /// (TwigStack, structural merge join). Built lazily on first use, at
  /// most once (std::call_once), so concurrent queries over one shared
  /// document — the service::Corpus regime — may all call this without
  /// external locking.
  const std::vector<NodeId>& TagIndex(TagId t) const;

  // -- Statistics (valid after Finish) ---------------------------------------

  /// \brief Number of element nodes.
  size_t NumElements() const { return num_elements_; }
  /// \brief Maximum element depth (root = 1), matching Table 1's convention.
  uint32_t MaxDepth() const { return max_depth_; }
  /// \brief Average element depth.
  double AvgDepth() const { return avg_depth_; }
  /// \brief Maximum same-tag nesting degree over all tags: 1 means
  /// non-recursive (no element is a descendant of a same-tag element).
  uint32_t MaxRecursionDegree() const { return max_recursion_; }
  /// \brief True iff some element has a same-tag proper ancestor.
  bool IsRecursive() const { return max_recursion_ > 1; }
  /// \brief Per-tag nesting degree: 1 = elements of this tag never nest.
  /// The optimizer's fine-grained rule uses this — pipelined //-joins are
  /// order-preserving whenever the *outer* tag does not nest, even if the
  /// document is recursive elsewhere.
  uint32_t TagRecursionDegree(TagId t) const {
    return t < tag_recursion_.size() ? tag_recursion_[t] : 0;
  }
  /// \brief Approximate in-memory size of the structural arrays in bytes.
  size_t StructureBytes() const;
  /// \brief Total bytes of text payload.
  size_t TextBytes() const { return text_pool_.size(); }

 private:
  void ComputeStats();

  TagDictionary tags_;
  std::vector<NodeKind> kind_;
  std::vector<TagId> tag_;
  std::vector<NodeId> parent_;
  std::vector<NodeId> first_child_;
  std::vector<NodeId> last_child_;  // builder-only helper
  std::vector<NodeId> next_sibling_;
  std::vector<NodeId> subtree_end_;
  std::vector<uint32_t> level_;

  // Text payloads: (offset, len) into text_pool_.
  std::vector<std::pair<uint32_t, uint32_t>> text_span_;
  std::string text_pool_;

  // Attributes, grouped per element: element -> [first, last) in attrs_.
  std::unordered_map<NodeId, std::pair<uint32_t, uint32_t>> attr_range_;
  std::vector<Attribute> attrs_;

  std::vector<NodeId> open_stack_;

  // Stats.
  size_t num_elements_ = 0;
  uint32_t max_depth_ = 0;
  double avg_depth_ = 0;
  uint32_t max_recursion_ = 0;
  std::vector<uint32_t> tag_recursion_;

  // Lazy per-tag document-order index, built under tag_index_once_ (the
  // call_once makes Document non-copyable, which it semantically always
  // was: nothing may copy a finished document's identity/generation).
  mutable std::vector<std::vector<NodeId>> tag_index_;
  mutable std::once_flag tag_index_once_;

  uint64_t generation_ = 0;  ///< Stamped by Finish(); 0 = unfinished.
};

/// \brief 1-based rank of element `n` among its parent's element children
/// that match `tag` ("*" = any element) — the counting positional
/// predicates use (`//book[2]` selects each parent's second book child).
/// The document root has rank 1.
uint32_t SiblingRank(const Document& doc, NodeId n, std::string_view tag);

}  // namespace xml
}  // namespace blossomtree

#endif  // BLOSSOMTREE_XML_DOCUMENT_H_
