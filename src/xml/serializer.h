#ifndef BLOSSOMTREE_XML_SERIALIZER_H_
#define BLOSSOMTREE_XML_SERIALIZER_H_

#include <string>

#include "xml/document.h"

namespace blossomtree {
namespace xml {

/// \brief Serialization options.
struct SerializeOptions {
  /// Pretty-print with 2-space indentation; text-only elements stay inline.
  bool indent = false;
};

/// \brief Serializes the subtree rooted at `n` back to XML text.
std::string SerializeSubtree(const Document& doc, NodeId n,
                             const SerializeOptions& options = {});

/// \brief Serializes the whole document.
std::string Serialize(const Document& doc, const SerializeOptions& options = {});

}  // namespace xml
}  // namespace blossomtree

#endif  // BLOSSOMTREE_XML_SERIALIZER_H_
