#include "xml/parser.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/strings.h"

namespace blossomtree {
namespace xml {

namespace {

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':' || static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool IsSpace(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; }

/// Cursor over the input with line/column tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t ahead) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  size_t pos() const { return pos_; }
  std::string_view Slice(size_t from, size_t to) const {
    return input_.substr(from, to - from);
  }

  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void AdvanceN(size_t n) {
    for (size_t i = 0; i < n; ++i) Advance();
  }

  bool ConsumePrefix(std::string_view prefix) {
    if (input_.substr(pos_).substr(0, prefix.size()) != prefix) return false;
    AdvanceN(prefix.size());
    return true;
  }

  void SkipSpace() {
    while (!AtEnd() && IsSpace(Peek())) Advance();
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError("XML parse error at line " +
                              std::to_string(line_) + ", column " +
                              std::to_string(col_) + ": " + msg);
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
};

/// Decodes entity and character references into `out`.
Status DecodeText(Cursor* c, std::string_view raw, std::string* out) {
  out->clear();
  out->reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '&') {
      out->push_back(raw[i]);
      continue;
    }
    size_t semi = raw.find(';', i);
    if (semi == std::string_view::npos) {
      return c->Error("unterminated entity reference");
    }
    std::string_view ent = raw.substr(i + 1, semi - i - 1);
    if (ent == "amp") {
      out->push_back('&');
    } else if (ent == "lt") {
      out->push_back('<');
    } else if (ent == "gt") {
      out->push_back('>');
    } else if (ent == "quot") {
      out->push_back('"');
    } else if (ent == "apos") {
      out->push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
      long long cp = -1;
      if (ent.size() > 2 && (ent[1] == 'x' || ent[1] == 'X')) {
        cp = 0;
        for (size_t k = 2; k < ent.size(); ++k) {
          char h = ent[k];
          int d;
          if (h >= '0' && h <= '9') {
            d = h - '0';
          } else if (h >= 'a' && h <= 'f') {
            d = h - 'a' + 10;
          } else if (h >= 'A' && h <= 'F') {
            d = h - 'A' + 10;
          } else {
            return c->Error("bad hex character reference");
          }
          cp = cp * 16 + d;
          // Bail inside the loop: a long digit run like &#xFFFF…F; would
          // otherwise overflow the accumulator (signed overflow is UB).
          if (cp > 0x10FFFF) {
            return c->Error("bad character reference");
          }
        }
      } else {
        cp = ParseNonNegativeInt(ent.substr(1));
      }
      if (cp < 0 || cp > 0x10FFFF) {
        return c->Error("bad character reference");
      }
      // UTF-8 encode.
      uint32_t u = static_cast<uint32_t>(cp);
      if (u < 0x80) {
        out->push_back(static_cast<char>(u));
      } else if (u < 0x800) {
        out->push_back(static_cast<char>(0xC0 | (u >> 6)));
        out->push_back(static_cast<char>(0x80 | (u & 0x3F)));
      } else if (u < 0x10000) {
        out->push_back(static_cast<char>(0xE0 | (u >> 12)));
        out->push_back(static_cast<char>(0x80 | ((u >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (u & 0x3F)));
      } else {
        out->push_back(static_cast<char>(0xF0 | (u >> 18)));
        out->push_back(static_cast<char>(0x80 | ((u >> 12) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | ((u >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (u & 0x3F)));
      }
    } else {
      return c->Error("unknown entity '&" + std::string(ent) + ";'");
    }
    i = semi;
  }
  return Status::OK();
}

Status ParseName(Cursor* c, std::string_view* name) {
  if (c->AtEnd() || !IsNameStartChar(c->Peek())) {
    return c->Error("expected a name");
  }
  size_t start = c->pos();
  while (!c->AtEnd() && IsNameChar(c->Peek())) c->Advance();
  *name = c->Slice(start, c->pos());
  return Status::OK();
}

Status SkipComment(Cursor* c) {
  // Cursor is just past "<!--".
  while (!c->AtEnd()) {
    if (c->Peek() == '-' && c->PeekAt(1) == '-') {
      if (c->PeekAt(2) != '>') return c->Error("'--' inside comment");
      c->AdvanceN(3);
      return Status::OK();
    }
    c->Advance();
  }
  return c->Error("unterminated comment");
}

Status SkipPI(Cursor* c) {
  while (!c->AtEnd()) {
    if (c->Peek() == '?' && c->PeekAt(1) == '>') {
      c->AdvanceN(2);
      return Status::OK();
    }
    c->Advance();
  }
  return c->Error("unterminated processing instruction");
}

Status SkipDoctype(Cursor* c) {
  // Cursor is just past "<!DOCTYPE". Skip until the matching '>', tracking
  // internal-subset brackets and quoted literals: a '>' inside a SYSTEM/
  // PUBLIC literal ("a>b") must not terminate the declaration, and a stray
  // ']' must not drive the depth negative (which would make the real
  // closing '>' unmatchable and misreport valid input as unterminated).
  int bracket_depth = 0;
  char quote = 0;
  while (!c->AtEnd()) {
    char ch = c->Peek();
    if (quote != 0) {
      if (ch == quote) quote = 0;
    } else if (ch == '"' || ch == '\'') {
      quote = ch;
    } else if (ch == '[') {
      ++bracket_depth;
    } else if (ch == ']') {
      if (bracket_depth > 0) --bracket_depth;
    } else if (ch == '>' && bracket_depth == 0) {
      c->Advance();
      return Status::OK();
    }
    c->Advance();
  }
  return c->Error("unterminated DOCTYPE");
}

Status ParseAttributes(Cursor* c, SaxHandler* handler) {
  std::string decoded;
  while (true) {
    c->SkipSpace();
    if (c->AtEnd()) return c->Error("unterminated start tag");
    char ch = c->Peek();
    if (ch == '>' || ch == '/') return Status::OK();
    std::string_view name;
    BT_RETURN_NOT_OK(ParseName(c, &name));
    c->SkipSpace();
    if (c->AtEnd() || c->Peek() != '=') {
      return c->Error("expected '=' after attribute name");
    }
    c->Advance();
    c->SkipSpace();
    if (c->AtEnd() || (c->Peek() != '"' && c->Peek() != '\'')) {
      return c->Error("expected quoted attribute value");
    }
    char quote = c->Peek();
    c->Advance();
    size_t start = c->pos();
    while (!c->AtEnd() && c->Peek() != quote) {
      if (c->Peek() == '<') return c->Error("'<' in attribute value");
      c->Advance();
    }
    if (c->AtEnd()) return c->Error("unterminated attribute value");
    std::string_view raw = c->Slice(start, c->pos());
    c->Advance();  // Closing quote.
    BT_RETURN_NOT_OK(DecodeText(c, raw, &decoded));
    handler->OnAttribute(name, decoded);
  }
}

}  // namespace

Status ParseXml(std::string_view input, SaxHandler* handler,
                const ParseOptions& options) {
  if (input.size() > options.max_input_bytes) {
    return Status::ResourceExhausted(
        "XML input of " + std::to_string(input.size()) +
        " bytes exceeds limit of " + std::to_string(options.max_input_bytes));
  }
  Cursor c(input);
  std::vector<std::string> open;  // Tag names for well-formedness checking.
  bool seen_root = false;
  std::string text_buf;
  std::string decoded;

  auto flush_text = [&]() -> Status {
    if (text_buf.empty()) return Status::OK();
    if (!open.empty() &&
        !(options.skip_whitespace_text && IsAllWhitespace(text_buf))) {
      handler->OnText(text_buf);
    }
    text_buf.clear();
    return Status::OK();
  };

  while (!c.AtEnd()) {
    if (c.Peek() != '<') {
      size_t start = c.pos();
      while (!c.AtEnd() && c.Peek() != '<') c.Advance();
      std::string_view raw = c.Slice(start, c.pos());
      if (open.empty()) {
        if (!IsAllWhitespace(raw)) {
          return c.Error("character data outside the root element");
        }
        continue;
      }
      BT_RETURN_NOT_OK(DecodeText(&c, raw, &decoded));
      text_buf += decoded;
      continue;
    }
    // '<' — dispatch on the following characters.
    if (c.PeekAt(1) == '?') {
      if (!options.allow_misc) return c.Error("processing instruction");
      BT_RETURN_NOT_OK(flush_text());
      c.AdvanceN(2);
      BT_RETURN_NOT_OK(SkipPI(&c));
      continue;
    }
    if (c.PeekAt(1) == '!') {
      if (c.PeekAt(2) == '-' && c.PeekAt(3) == '-') {
        if (!options.allow_misc) return c.Error("comment");
        BT_RETURN_NOT_OK(flush_text());
        c.AdvanceN(4);
        BT_RETURN_NOT_OK(SkipComment(&c));
        continue;
      }
      if (c.ConsumePrefix("<![CDATA[")) {
        if (open.empty()) return c.Error("CDATA outside the root element");
        size_t start = c.pos();
        while (!c.AtEnd() && !(c.Peek() == ']' && c.PeekAt(1) == ']' &&
                               c.PeekAt(2) == '>')) {
          c.Advance();
        }
        if (c.AtEnd()) return c.Error("unterminated CDATA section");
        text_buf.append(c.Slice(start, c.pos()));
        c.AdvanceN(3);
        continue;
      }
      if (c.ConsumePrefix("<!DOCTYPE")) {
        if (seen_root) return c.Error("DOCTYPE after the root element");
        BT_RETURN_NOT_OK(SkipDoctype(&c));
        continue;
      }
      return c.Error("unrecognized markup declaration");
    }
    if (c.PeekAt(1) == '/') {
      // End tag.
      BT_RETURN_NOT_OK(flush_text());
      c.AdvanceN(2);
      std::string_view name;
      BT_RETURN_NOT_OK(ParseName(&c, &name));
      c.SkipSpace();
      if (c.AtEnd() || c.Peek() != '>') {
        return c.Error("expected '>' in end tag");
      }
      c.Advance();
      if (open.empty() || open.back() != name) {
        return c.Error("mismatched end tag </" + std::string(name) + ">");
      }
      handler->OnEndElement(name);
      open.pop_back();
      continue;
    }
    // Start tag.
    BT_RETURN_NOT_OK(flush_text());
    c.Advance();  // '<'
    std::string_view name;
    BT_RETURN_NOT_OK(ParseName(&c, &name));
    if (open.empty() && seen_root) {
      return c.Error("multiple root elements");
    }
    seen_root = true;
    handler->OnStartElement(name);
    BT_RETURN_NOT_OK(ParseAttributes(&c, handler));
    if (c.Peek() == '/') {
      c.Advance();
      if (c.AtEnd() || c.Peek() != '>') {
        return c.Error("expected '>' after '/' in empty-element tag");
      }
      c.Advance();
      handler->OnEndElement(name);
      continue;
    }
    c.Advance();  // '>'
    open.emplace_back(name);
    if (open.size() > options.max_depth) {
      return Status::ResourceExhausted(
          "element nesting depth exceeds limit of " +
          std::to_string(options.max_depth));
    }
  }
  if (!open.empty()) {
    return c.Error("unclosed element <" + open.back() + ">");
  }
  if (!seen_root) {
    return c.Error("no root element");
  }
  return Status::OK();
}

namespace {

/// Builds a Document from SAX events.
class DomBuilder : public SaxHandler {
 public:
  explicit DomBuilder(Document* doc) : doc_(doc) {}

  void OnStartElement(std::string_view name) override {
    doc_->BeginElement(name);
  }
  void OnAttribute(std::string_view name, std::string_view value) override {
    doc_->AddAttribute(name, value);
  }
  void OnText(std::string_view text) override { doc_->AddText(text); }
  void OnEndElement(std::string_view) override { doc_->EndElement(); }

 private:
  Document* doc_;
};

}  // namespace

Result<std::unique_ptr<Document>> ParseDocument(std::string_view input,
                                                const ParseOptions& options) {
  auto doc = std::make_unique<Document>();
  DomBuilder builder(doc.get());
  BT_RETURN_NOT_OK(ParseXml(input, &builder, options));
  BT_RETURN_NOT_OK(doc->Finish());
  return doc;
}

Result<std::unique_ptr<Document>> ParseDocumentFile(
    const std::string& path, const ParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string content = ss.str();
  return ParseDocument(content, options);
}

}  // namespace xml
}  // namespace blossomtree
