#ifndef BLOSSOMTREE_SERVICE_CORPUS_H_
#define BLOSSOMTREE_SERVICE_CORPUS_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/plan_cache.h"
#include "exec/result_cache.h"
#include "storage/disk_store.h"
#include "storage/node_store.h"
#include "storage/page_store.h"
#include "util/cache.h"
#include "util/status.h"
#include "xml/document.h"

namespace blossomtree {
namespace service {

/// \brief One registered document of a Corpus, handed out as
/// shared_ptr<const CorpusDocument> so an in-flight query keeps its
/// document (and the caches' generation identity) alive across a
/// concurrent Evict or Replace.
///
/// The document is immutable (xml::Document is frozen by Finish()), so
/// concurrent queries share it without locks; the lazily built PageStore is
/// constructed at most once under a std::once_flag.
class CorpusDocument {
 public:
  CorpusDocument(std::string name, std::unique_ptr<xml::Document> doc);

  /// \brief Disk-backed variant: the document is the DiskStore's zero-copy
  /// facade over its mapped BTSX v2 image (never null; Corpus::AddDisk
  /// rejects pread-mode stores, which have no facade).
  CorpusDocument(std::string name, std::unique_ptr<storage::DiskStore> disk);

  const std::string& name() const { return name_; }
  const xml::Document* doc() const {
    return disk_ != nullptr ? disk_->document() : doc_.get();
  }

  /// \brief The document's generation stamp (xml::Document::generation()):
  /// the identity every corpus-wide NoK result-cache entry is keyed by, so
  /// replacing a document under the same name silently invalidates every
  /// cached sub-result of the old build.
  uint64_t generation() const { return generation_; }

  /// \brief True when this entry serves an out-of-core BTSX v2 file rather
  /// than an in-RAM build.
  bool disk_backed() const { return disk_ != nullptr; }

  /// \brief The shared paged node store for this document: the DiskStore's
  /// block-cached substrate for disk-backed entries, else an in-RAM
  /// PageStore built on first use. Thread-safe; the store's own counters
  /// are atomic and per-scan state lives in caller cursors.
  const storage::NodeStore& store() const;

  /// \brief The DiskStore behind a disk-backed entry — the observability
  /// plane samples its block-cache residency (DESIGN.md §15). nullptr for
  /// in-RAM builds.
  const storage::DiskStore* disk() const { return disk_.get(); }

  /// \brief Structural index over the document (DESIGN.md §14): the `.btsi`
  /// sidecar a disk-backed entry's DiskStore loaded at open, or nullptr —
  /// in-RAM builds and index-less corpus files plan with sequential scans.
  /// Immutable; shared by every concurrent query on this document.
  const index::StructuralIndex* index() const {
    return disk_ != nullptr ? disk_->index() : nullptr;
  }

 private:
  std::string name_;
  std::unique_ptr<xml::Document> doc_;
  std::unique_ptr<storage::DiskStore> disk_;
  uint64_t generation_ = 0;
  mutable std::once_flag store_once_;
  mutable std::unique_ptr<storage::PageStore> store_;
};

/// \brief Corpus-wide knobs: the shared cache budgets (DESIGN.md §12).
/// Both caches default OFF, matching the engine-level knobs — a corpus
/// without caches behaves exactly like per-query engines did before PR 6.
struct CorpusOptions {
  /// Corpus-wide plan cache: query text → AST, canonical fingerprint →
  /// compiled BlossomTree. Compiled plans are pure functions of the query
  /// (not of any document), so one cache serves every document and session.
  util::CacheOptions plan_cache;
  /// Corpus-wide NoK sub-result cache. Entries are keyed by document
  /// generation, so one cache serves every document: cross-document
  /// collisions are impossible and eviction of a replaced document's
  /// entries is automatic (they just age out unused).
  util::CacheOptions result_cache;
};

/// \brief A named multi-document registry plus the corpus-scoped shared
/// state every session's queries use: the plan cache and the NoK
/// sub-result cache promoted from per-engine to corpus scope (DESIGN.md
/// §12).
///
/// Thread-safe: Add/Get/Evict may be called concurrently with running
/// queries. Get hands out shared ownership, so eviction never invalidates
/// a document a running query resolved at admission time.
class Corpus {
 public:
  explicit Corpus(CorpusOptions options = {});

  /// \brief Registers `doc` (which must be Finish()ed) under `name`,
  /// replacing any existing entry. Replacement is safe mid-traffic: old
  /// handles stay alive via shared ownership and the new build's fresh
  /// generation keys its cache entries apart from the old one's.
  Status Add(const std::string& name, std::unique_ptr<xml::Document> doc);

  /// \brief Registers the BTSX v2 file at `path` under `name` without
  /// parsing any XML: the file is opened O(open) as a DiskStore
  /// (mmap-backed with a block-cache budget; see storage/disk_store.h) and
  /// its zero-copy document facade serves queries exactly like an in-RAM
  /// build — byte-identical results, fresh generation for cache identity.
  /// `options.use_mmap` must be true: the scan-only pread mode has no
  /// document facade to run queries over.
  Status AddDisk(const std::string& name, const std::string& path,
                 storage::DiskStoreOptions options = {});

  /// \brief Resolves a name to its current document; nullptr when absent.
  std::shared_ptr<const CorpusDocument> Get(const std::string& name) const;

  /// \brief Drops `name` from the registry (running queries holding the
  /// document finish normally). Returns false when absent.
  bool Evict(const std::string& name);

  /// \brief Registered names in lexicographic order.
  std::vector<std::string> Names() const;

  size_t size() const;

  /// \brief The corpus-wide plan cache; nullptr unless
  /// CorpusOptions::plan_cache.enabled.
  engine::PlanCache* plan_cache() const { return plan_cache_.get(); }

  /// \brief The corpus-wide NoK sub-result cache; nullptr unless
  /// CorpusOptions::result_cache.enabled.
  exec::NokResultCache* result_cache() const { return result_cache_.get(); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const CorpusDocument>> docs_;
  std::unique_ptr<engine::PlanCache> plan_cache_;
  std::unique_ptr<exec::NokResultCache> result_cache_;
};

}  // namespace service
}  // namespace blossomtree

#endif  // BLOSSOMTREE_SERVICE_CORPUS_H_
