#ifndef BLOSSOMTREE_SERVICE_OBSERVER_H_
#define BLOSSOMTREE_SERVICE_OBSERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "engine/query_profile.h"
#include "util/metrics.h"
#include "util/status.h"

namespace blossomtree {
namespace service {

/// \brief FNV-1a 64-bit fingerprint of a query text: the identity flight-
/// recorder entries and per-fingerprint rollups aggregate by. Stable across
/// runs and platforms (pure byte hash, no pointers, no seeds).
uint64_t FingerprintQuery(std::string_view query);

/// \brief The deterministic work counters of one query, summed over every
/// operator of its profile — bitwise-identical at every thread count (the
/// DESIGN.md §8 contract the recorder inherits).
struct WorkCounters {
  uint64_t nodes_scanned = 0;
  uint64_t index_entries = 0;
  uint64_t comparisons = 0;
  uint64_t matches = 0;
  uint64_t nl_cells = 0;

  void MergeFrom(const WorkCounters& o) {
    nodes_scanned += o.nodes_scanned;
    index_entries += o.index_entries;
    comparisons += o.comparisons;
    matches += o.matches;
    nl_cells += o.nl_cells;
  }

  static WorkCounters FromProfile(const engine::QueryProfile& profile);
};

/// \brief The access-path mix of one executed plan, classified from the
/// profile's operator labels: how many NoKs ran as sequential scans, merged
/// single-pass views, index seeks, and zero-probe short-circuits (a seek
/// whose candidate set was empty — the DataGuide proved the path absent or
/// the value run matched nothing). "Which plans stopped scanning" is the
/// per-query ground truth the optimizer work feeds on (DESIGN.md §15).
struct AccessPathMix {
  uint64_t scan_ops = 0;      ///< NokScan operators (sequential scans).
  uint64_t merged_views = 0;  ///< NoK views served by the shared merged scan.
  uint64_t merged_scan = 0;   ///< 1 when the plan had a shared merged pass.
  uint64_t seek_ops = 0;      ///< IndexSeek operators (candidates probed).
  uint64_t empty_seeks = 0;   ///< Seeks that probed nothing (short-circuit).

  void MergeFrom(const AccessPathMix& o) {
    scan_ops += o.scan_ops;
    merged_views += o.merged_views;
    merged_scan += o.merged_scan;
    seek_ops += o.seek_ops;
    empty_seeks += o.empty_seeks;
  }

  static AccessPathMix FromProfile(const engine::QueryProfile& profile);
};

/// \brief One flight-recorder entry: the always-on per-query summary
/// recorded for every terminal outcome — completed, rejected, unknown
/// document, cancelled, failed (DESIGN.md §15). Everything here is either
/// already known at completion time or a deterministic counter; nothing is
/// recomputed from the document.
struct QuerySummary {
  uint64_t id = 0;  ///< Monotonic recorder id (1-based; 0 = empty slot).
  std::string tenant;
  std::string document;
  std::string query;  ///< Possibly truncated to max_recorded_query_bytes.
  uint64_t fingerprint = 0;
  StatusCode code = StatusCode::kOk;
  bool admitted = false;  ///< False for admission-time rejection/not-found.
  uint64_t queue_delay_ns = 0;
  uint64_t run_ns = 0;
  uint64_t e2e_ns = 0;
  unsigned threads = 1;  ///< Intra-query parallelism the query ran with.
  WorkCounters work;
  AccessPathMix paths;
  /// Corpus-cache hit deltas sampled around the query's run. Exact when one
  /// query runs at a time; approximate under concurrency (a neighbor's hits
  /// can land in this window) — a triage signal, not a gated counter.
  uint64_t plan_cache_hits = 0;
  uint64_t result_cache_hits = 0;

  /// \brief The status label the metrics series use: "ok", "rejected"
  /// (admission), "not_found", "cancelled", "resource_exhausted" (a
  /// per-query limit tripped while running), "failed".
  std::string_view StatusLabel() const;

  std::string ToJson() const;
  /// \brief One-line human form for `btserve recent`.
  std::string ToLine() const;
};

/// \brief A slow-query log entry: the flight-recorder summary plus the full
/// plan and metrics detail captured only for queries over the latency
/// threshold (capturing them for every query would violate the overhead
/// budget).
struct SlowQueryRecord {
  QuerySummary summary;
  std::string explain_analyze;  ///< EXPLAIN ANALYZE text of the actual run.
  std::string profile_json;     ///< engine::QueryProfile::ToJson().
  std::string metrics_json;     ///< Per-query engine registry snapshot.

  std::string ToJson() const;
};

/// \brief Per-tenant aggregation over the flight recorder's retained
/// window (the labeled `service.tenant.*` metrics cover the full service
/// lifetime; this rollup answers "who is burning the pool *right now*").
struct TenantRollup {
  std::string tenant;
  uint64_t admitted = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t not_found = 0;
  uint64_t cancelled = 0;
  uint64_t failed = 0;  ///< Includes resource_exhausted trips while running.
  uint64_t total_e2e_ns = 0;
  util::HistogramSnapshot e2e;
  WorkCounters work;
};

/// \brief Per-query-fingerprint aggregation over the recorder window: the
/// "top queries" surface (`btserve top`).
struct FingerprintRollup {
  uint64_t fingerprint = 0;
  std::string example_query;
  uint64_t count = 0;
  uint64_t ok_count = 0;
  uint64_t error_count = 0;
  uint64_t total_e2e_ns = 0;
  WorkCounters work;
  AccessPathMix paths;
};

/// \brief One time-windowed delta of the service metrics registry, so rates
/// (queries/s, rejections/s, scan bytes/s) are computable from any two
/// consecutive samples. Counters and histograms are deltas since the
/// previous sample; gauges are point-in-time values at the sample instant.
///
/// MergeFrom is commutative and associative over a fixed set of windows
/// (counters/histograms sum; the span takes the min/max bounds; gauges come
/// from the constituent with the greatest (end_ns, seq)), so merging any
/// permutation of the same windows renders identical JSON — the same
/// determinism contract HistogramSnapshot::MergeFrom pins.
struct MetricsWindow {
  uint64_t seq = 0;
  uint64_t start_ns = 0;  ///< Nanoseconds since the observer epoch.
  uint64_t end_ns = 0;
  std::map<std::string, uint64_t> counters;  ///< Deltas; zero deltas elided.
  /// Bucket/count/sum are windowed deltas; min/max are lifetime values of
  /// the underlying histogram (a log2 bucket delta cannot recover them).
  std::map<std::string, util::HistogramSnapshot> histograms;
  std::map<std::string, uint64_t> gauges;

  void MergeFrom(const MetricsWindow& o);
  std::string ToJson() const;
};

/// \brief Observer knobs (DESIGN.md §15). Defaults are the always-on
/// production settings: summaries for everything, detail only for slow
/// queries.
struct ObserverOptions {
  bool enabled = true;
  /// Flight-recorder entries retained across all shards.
  size_t recorder_capacity = 1024;
  /// Recorder shards: completion-time recording takes one shard mutex, so
  /// concurrent slots contend only 1/shards of the time.
  size_t recorder_shards = 8;
  /// Queries with e2e_ns >= threshold additionally capture full plan detail
  /// into the slow log. 0 captures every query (test/bench mode).
  uint64_t slow_threshold_ns = 250'000'000;
  size_t slow_log_capacity = 32;
  /// Windowed metrics snapshots retained (SampleWindow ring).
  size_t window_capacity = 64;
  /// Stored query-text prefix per summary (bounds recorder memory).
  size_t max_recorded_query_bytes = 256;
  /// Per-tenant labeled counters/histograms in the service registry.
  bool tenant_metrics = true;
};

/// \brief The service observability plane (DESIGN.md §15): an always-on
/// query flight recorder (bounded sharded ring of QuerySummary), a
/// threshold-gated slow-query log, per-tenant labeled metrics, and periodic
/// time-windowed registry snapshots — all fed by QueryService at query
/// completion, all readable while traffic is running.
///
/// Overhead discipline: when disabled the only cost on the query path is
/// one branch on `enabled()`. Enabled, recording happens once per query
/// *completion* (never per node or per batch), takes one shard mutex, and
/// never blocks other shards. Reading (Recent/SlowLog/rollups/exposition)
/// locks shards briefly to copy and aggregates outside the locks.
///
/// Determinism: summaries carry only deterministic work counters (plus wall
/// timings, which live in histograms and the timing fields) — recording
/// them never perturbs query results or the deterministic counter surface,
/// which stays bitwise-identical at 1/2/4 slots with the recorder on (the
/// observer test and the bench_service gate pin this).
class ServiceObserver {
 public:
  ServiceObserver(util::MetricsRegistry* registry, ObserverOptions options);

  bool enabled() const { return options_.enabled; }
  const ObserverOptions& options() const { return options_; }

  /// \brief Installs the gauge sampler (queue depth, resident bytes, ...)
  /// SampleWindow and the exposition surface call. Set once at service
  /// construction, before traffic.
  void set_gauge_sampler(
      std::function<std::map<std::string, uint64_t>()> sampler) {
    gauge_sampler_ = std::move(sampler);
  }

  /// \brief True when a query with this end-to-end latency belongs in the
  /// slow log — the caller builds the (expensive) detail strings only then.
  bool IsSlow(uint64_t e2e_ns) const {
    return enabled() && e2e_ns >= options_.slow_threshold_ns;
  }

  /// \brief Assigns the next recorder id (1-based, monotonic).
  uint64_t NextId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// \brief Records one terminal outcome: stamps the summary into the
  /// flight recorder, bumps the status-labeled (and per-tenant) metrics,
  /// and — when `detail` is non-null — appends to the slow log. `detail`
  /// is consumed. No-op when disabled.
  void RecordCompletion(QuerySummary summary,
                        SlowQueryRecord* detail = nullptr);

  /// \brief Captures one time-windowed snapshot of the registry (deltas
  /// since the previous sample) plus current gauges, appends it to the
  /// window ring, and returns it.
  MetricsWindow SampleWindow();

  /// \brief Current gauges from the installed sampler, plus the observer's
  /// own (`observer.recorder_entries`, `observer.recorder_dropped`,
  /// `observer.slow_entries`, `trace.dropped_events`).
  std::map<std::string, uint64_t> Gauges() const;

  /// \brief Newest-first summaries from the recorder, at most `n`.
  std::vector<QuerySummary> Recent(size_t n) const;

  /// \brief Looks up a retained summary by recorder id.
  bool FindSummary(uint64_t id, QuerySummary* out) const;

  /// \brief Slow-log entries, newest first.
  std::vector<SlowQueryRecord> SlowLog() const;

  /// \brief Looks up a slow-log entry by recorder id.
  bool FindSlow(uint64_t id, SlowQueryRecord* out) const;

  /// \brief Retained windows, oldest first.
  std::vector<MetricsWindow> Windows() const;

  /// \brief Per-tenant aggregation over the recorder's retained window,
  /// sorted by tenant name.
  std::vector<TenantRollup> TenantRollups() const;

  /// \brief Per-fingerprint aggregation over the recorder's retained
  /// window, sorted by total e2e descending (ties: fingerprint ascending),
  /// at most `n`.
  std::vector<FingerprintRollup> TopFingerprints(size_t n) const;

  /// \brief Summaries ever recorded / evicted from the ring by overwrite.
  uint64_t TotalRecorded() const;
  uint64_t RecorderDropped() const;

  // Rendered surfaces (btserve, CI artifacts).
  std::string RecentJson(size_t n) const;
  std::string SlowJson() const;
  std::string WindowsJson() const;
  std::string TopText(size_t n) const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<QuerySummary> ring;  ///< Slot id 0 = never written.
    uint64_t written = 0;            ///< Entries ever stored in this shard.
  };

  uint64_t NanosSinceEpoch() const;

  util::MetricsRegistry* registry_;
  ObserverOptions options_;
  std::function<std::map<std::string, uint64_t>()> gauge_sampler_;

  std::atomic<uint64_t> next_id_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_capacity_ = 0;

  mutable std::mutex slow_mu_;
  std::deque<SlowQueryRecord> slow_;  ///< Newest at the back.

  mutable std::mutex window_mu_;
  std::deque<MetricsWindow> windows_;  ///< Oldest at the front.
  uint64_t window_seq_ = 0;
  uint64_t last_sample_ns_ = 0;
  std::map<std::string, uint64_t> last_counters_;
  std::map<std::string, util::HistogramSnapshot> last_histograms_;

  std::chrono::steady_clock::time_point epoch_;
};

/// \brief The one-call observability dump (DESIGN.md §15):
/// QueryService::ObservabilityReport() renders every surface at once — the
/// Prometheus exposition (registry + gauges), the flight-recorder and
/// slow-log JSON dumps, the per-tenant/per-fingerprint rollup text, and the
/// windowed snapshots.
struct ObservabilityReport {
  std::string prometheus;
  std::string recent_json;
  std::string slow_json;
  std::string top_text;
  std::string windows_json;
};

}  // namespace service
}  // namespace blossomtree

#endif  // BLOSSOMTREE_SERVICE_OBSERVER_H_
