#include "service/corpus.h"

#include <utility>

namespace blossomtree {
namespace service {

CorpusDocument::CorpusDocument(std::string name,
                               std::unique_ptr<xml::Document> doc)
    : name_(std::move(name)),
      doc_(std::move(doc)),
      generation_(doc_->generation()) {}

CorpusDocument::CorpusDocument(std::string name,
                               std::unique_ptr<storage::DiskStore> disk)
    : name_(std::move(name)),
      disk_(std::move(disk)),
      generation_(disk_->generation()) {}

const storage::NodeStore& CorpusDocument::store() const {
  if (disk_ != nullptr) return *disk_;
  std::call_once(store_once_, [this] {
    store_ = std::make_unique<storage::PageStore>(*doc_);
  });
  return *store_;
}

Corpus::Corpus(CorpusOptions options) {
  if (options.plan_cache.enabled) {
    plan_cache_ = std::make_unique<engine::PlanCache>(options.plan_cache);
  }
  if (options.result_cache.enabled) {
    result_cache_ =
        std::make_unique<exec::NokResultCache>(options.result_cache);
  }
}

Status Corpus::Add(const std::string& name,
                   std::unique_ptr<xml::Document> doc) {
  if (name.empty()) {
    return Status::InvalidArgument("corpus: document name must be non-empty");
  }
  if (doc == nullptr || doc->generation() == 0) {
    return Status::InvalidArgument(
        "corpus: document must be non-null and Finish()ed before Add");
  }
  // Freeze the lazily built tag index once, before the document is shared:
  // join-based operators and the cost model all read it, and building it
  // here keeps the first concurrent queries from contending on the
  // call_once inside Document::TagIndex.
  doc->TagIndex(0);
  auto entry = std::make_shared<CorpusDocument>(name, std::move(doc));
  std::lock_guard<std::mutex> lock(mu_);
  docs_[name] = std::move(entry);
  return Status::OK();
}

Status Corpus::AddDisk(const std::string& name, const std::string& path,
                       storage::DiskStoreOptions options) {
  if (name.empty()) {
    return Status::InvalidArgument("corpus: document name must be non-empty");
  }
  if (!options.use_mmap) {
    return Status::InvalidArgument(
        "corpus: disk documents need the mapped mode (pread mode has no "
        "document facade to query)");
  }
  BT_ASSIGN_OR_RETURN(std::unique_ptr<storage::DiskStore> disk,
                      storage::DiskStore::Open(path, options));
  // The facade's tag index is a zero-copy span over the persisted per-tag
  // streams — nothing to pre-build here, unlike Add().
  auto entry = std::make_shared<CorpusDocument>(name, std::move(disk));
  std::lock_guard<std::mutex> lock(mu_);
  docs_[name] = std::move(entry);
  return Status::OK();
}

std::shared_ptr<const CorpusDocument> Corpus::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(name);
  return it == docs_.end() ? nullptr : it->second;
}

bool Corpus::Evict(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return docs_.erase(name) > 0;
}

std::vector<std::string> Corpus::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(docs_.size());
  for (const auto& [name, entry] : docs_) names.push_back(name);
  return names;
}

size_t Corpus::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return docs_.size();
}

}  // namespace service
}  // namespace blossomtree
