#include "service/query_service.h"

#include <utility>
#include <vector>

#include "util/trace.h"

namespace blossomtree {
namespace service {

namespace {

uint64_t NanosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

// -- QueryTicket -------------------------------------------------------------

const Result<std::string>& QueryTicket::Wait() const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return state_ == State::kDone; });
  return result_;  // Immutable once done.
}

QueryTicket::State QueryTicket::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

void QueryTicket::Cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kDone) return;
  cancel_requested_ = true;
  // A queued query is skipped at dispatch; a running one is told through
  // its engine's cooperative token (observed at the next batch boundary).
  if (running_engine_ != nullptr) running_engine_->Cancel();
}

uint64_t QueryTicket::queue_delay_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_delay_ns_;
}

uint64_t QueryTicket::e2e_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return e2e_ns_;
}

void QueryTicket::Complete(Result<std::string> result) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kDone) return;  // First completion wins.
  result_ = std::move(result);
  state_ = State::kDone;
  cv_.notify_all();
}

// -- QueryService ------------------------------------------------------------

QueryService::QueryService(Corpus* corpus, ServiceOptions options)
    : corpus_(corpus), options_(options), queue_(options.max_queue) {
  size_t slots = options_.slots == 0 ? util::ThreadPool::DefaultThreads()
                                     : options_.slots;
  if (options_.intra_query_threads > 1) {
    intra_pool_ =
        std::make_unique<util::ThreadPool>(options_.intra_query_threads);
  }
  pool_ = std::make_unique<util::ThreadPool>(slots);
  observer_ = std::make_unique<ServiceObserver>(&metrics_, options_.observer);
  observer_->set_gauge_sampler([this] { return ResourceGauges(); });
}

QueryService::~QueryService() {
  std::vector<std::shared_ptr<QueryTicket>> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    drained = queue_.DrainAll();
    in_flight_ -= drained.size();
    if (in_flight_ == 0) idle_cv_.notify_all();
  }
  for (const std::shared_ptr<QueryTicket>& t : drained) {
    if (options_.collect_metrics) {
      metrics_.GetCounter("service.cancelled")->Increment();
    }
    // Recorded before Complete(): a ticket observed done always has its
    // summary visible in the flight recorder.
    if (observer_->enabled()) {
      QuerySummary s;
      s.id = observer_->NextId();
      s.tenant = t->tenant_;
      s.document = t->document_;
      s.query = t->query_;
      s.fingerprint = FingerprintQuery(t->query_);
      s.code = StatusCode::kCancelled;
      s.admitted = true;  // Was queued; shutdown cancelled it.
      s.e2e_ns = NanosSince(t->submit_time_);
      observer_->RecordCompletion(std::move(s));
    }
    t->Complete(Status::Cancelled("service: shut down while queued"));
  }
  // Joining the execution pool waits for every running query; the intra-
  // query pool (member order) is destroyed after it, so partitioned scans
  // of in-flight queries always have their workers.
  pool_.reset();
  intra_pool_.reset();
}

void QueryService::DefineTenant(const std::string& name,
                                const util::QueryLimits& limits) {
  std::lock_guard<std::mutex> lock(mu_);
  tenants_[name] = TenantClass{name, limits};
}

std::shared_ptr<Session> QueryService::CreateSession(
    const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  util::QueryLimits limits;
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) limits = it->second.limits;
  return std::shared_ptr<Session>(
      new Session(next_session_id_++, tenant, limits));
}

std::shared_ptr<QueryTicket> QueryService::Reject(
    std::shared_ptr<QueryTicket> ticket, Status status) {
  if (options_.collect_metrics) {
    metrics_.GetCounter("service.rejected")->Increment();
  }
  // Rejections are terminal outcomes too: they land in the flight recorder
  // and the status-labeled service.queries / service.e2e_ns rollups, so an
  // overloaded tenant is visible in the same surfaces as a healthy one.
  // Recorded before Complete() — once a waiter sees the ticket done, the
  // summary is already queryable.
  if (observer_->enabled()) {
    QuerySummary s;
    s.id = observer_->NextId();
    s.tenant = ticket->tenant_;
    s.document = ticket->document_;
    s.query = ticket->query_;
    s.fingerprint = FingerprintQuery(ticket->query_);
    s.code = status.code();
    s.admitted = false;
    s.e2e_ns = NanosSince(ticket->submit_time_);
    observer_->RecordCompletion(std::move(s));
  }
  ticket->Complete(std::move(status));
  return ticket;
}

std::shared_ptr<QueryTicket> QueryService::Submit(const Session& session,
                                                  const std::string& document,
                                                  std::string query) {
  auto ticket = std::shared_ptr<QueryTicket>(new QueryTicket(
      session.tenant(), document, std::move(query), session.limits()));
  ticket->submit_time_ = std::chrono::steady_clock::now();
  if (options_.collect_metrics) {
    metrics_.GetCounter("service.submitted")->Increment();
  }
  ticket->doc_ = corpus_->Get(document);
  if (ticket->doc_ == nullptr) {
    return Reject(std::move(ticket), Status::NotFound(
                                         "service: unknown corpus document '" +
                                         document + "'"));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Unlock-free path: Reject only touches the ticket and metrics.
    } else if (running_ < pool_->NumThreads()) {
      // A free slot implies an empty wait queue (DispatchLocked drains the
      // queue before any slot frees up), so starting immediately cannot
      // overtake an earlier queued query.
      ++running_;
      ++in_flight_;
      pool_->Submit([this, ticket] { RunQuery(ticket); });
      if (options_.collect_metrics) {
        metrics_.GetCounter("service.admitted")->Increment();
      }
      return ticket;
    } else if (queue_.Push(session.tenant(), ticket)) {
      ++in_flight_;
      if (options_.collect_metrics) {
        metrics_.GetCounter("service.admitted")->Increment();
        metrics_.GetCounter("service.queued")->Increment();
      }
      return ticket;
    } else {
      return Reject(std::move(ticket),
                    Status::ResourceExhausted(
                        "service: admission queue full (" +
                        std::to_string(queue_.max_queued()) + " waiting)"));
    }
  }
  return Reject(std::move(ticket),
                Status::Cancelled("service: shutting down"));
}

Result<std::string> QueryService::Execute(const Session& session,
                                          const std::string& document,
                                          std::string query) {
  return Submit(session, document, std::move(query))->Wait();
}

void QueryService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void QueryService::DispatchLocked() {
  if (stopping_) return;
  while (running_ < pool_->NumThreads()) {
    std::shared_ptr<QueryTicket> next = queue_.Pop();
    if (next == nullptr) break;
    ++running_;
    pool_->Submit([this, next] { RunQuery(next); });
  }
}

void QueryService::RunQuery(const std::shared_ptr<QueryTicket>& ticket) {
  util::TraceSpan span("service", "query");
  auto run_start = std::chrono::steady_clock::now();
  uint64_t queue_delay = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          run_start - ticket->submit_time_)
          .count());
  if (options_.collect_metrics) {
    metrics_.GetHistogram("service.queue_delay_ns")->Record(queue_delay);
  }

  // Per-query engine over the shared document, wired to the corpus-wide
  // caches and the session's limits. Construction is cheap — the heavy
  // state (document, caches, pools) is all shared and borrowed.
  engine::EngineOptions eo;
  eo.num_threads =
      options_.intra_query_threads == 0 ? 1 : options_.intra_query_threads;
  eo.plan.pool = intra_pool_.get();
  eo.limits = ticket->limits_;
  eo.collect_profile = options_.collect_profile;
  // The observer reads each query's deterministic work counters and access-
  // path mix from its profile, and the slow log needs the EXPLAIN ANALYZE
  // text and metrics snapshot. Profiling never changes results (run-to-
  // completion normalization changes counters vs a short-circuiting run,
  // but identically at every thread count), so forcing it on preserves the
  // service's determinism contract.
  const bool observe = observer_->enabled();
  if (observe) {
    eo.collect_profile = true;
    eo.collect_metrics = true;
  }
  eo.shared_plan_cache = corpus_->plan_cache();
  eo.plan.result_cache = corpus_->result_cache();
  // Scans of disk-backed documents touch nodes through the DiskStore's
  // block cache so residency stays under its budget; in-RAM documents keep
  // the plain document scan (their PageStore stays lazy, bench-only).
  if (ticket->doc_->disk_backed()) {
    eo.plan.store = &ticket->doc_->store();
  }
  // The `.btsi` structural index the corpus loaded with the document (if
  // any): plans cost index seeks against scans per NoK and short-circuit
  // provably-empty patterns. Access paths never change results.
  eo.plan.index = ticket->doc_->index();
  engine::BlossomTreeEngine engine(ticket->doc_->doc(), eo);

  // Corpus-cache hit counts sampled around the run, so the summary can
  // carry this query's (approximate under concurrency) hit delta.
  uint64_t plan_hits_before = 0;
  uint64_t result_hits_before = 0;
  if (observe) {
    if (corpus_->plan_cache() != nullptr) {
      plan_hits_before = corpus_->plan_cache()->Stats().hits;
    }
    if (corpus_->result_cache() != nullptr) {
      result_hits_before = corpus_->result_cache()->Stats().hits;
    }
  }

  bool cancelled_while_queued = false;
  {
    std::lock_guard<std::mutex> lock(ticket->mu_);
    if (ticket->cancel_requested_) {
      cancelled_while_queued = true;
    } else {
      ticket->state_ = QueryTicket::State::kRunning;
      ticket->running_engine_ = &engine;
    }
  }

  Result<std::string> result = std::string{};
  if (cancelled_while_queued) {
    result = Status::Cancelled("service: cancelled before running");
  } else {
    result = engine.EvaluateQuery(ticket->query_);
    std::lock_guard<std::mutex> lock(ticket->mu_);
    ticket->running_engine_ = nullptr;
    if (options_.collect_profile) ticket->profile_ = engine.LastProfile();
  }

  uint64_t run_ns = NanosSince(run_start);
  uint64_t e2e = NanosSince(ticket->submit_time_);
  {
    std::lock_guard<std::mutex> lock(ticket->mu_);
    ticket->queue_delay_ns_ = queue_delay;
    ticket->e2e_ns_ = e2e;
  }
  StatusCode code = result.ok() ? StatusCode::kOk : result.status().code();
  if (options_.collect_metrics) {
    metrics_.GetHistogram("service.run_ns")->Record(run_ns);
    metrics_.GetHistogram("service.e2e_ns")->Record(e2e);
    const char* outcome =
        result.ok() ? "service.completed"
                    : (code == StatusCode::kCancelled ? "service.cancelled"
                                                      : "service.failed");
    metrics_.GetCounter(outcome)->Increment();
  }
  if (code == StatusCode::kResourceExhausted) {
    guard_trips_.fetch_add(1, std::memory_order_relaxed);
  }
  // Observer bookkeeping happens before Complete() wakes the waiter: once
  // Wait() returns, the query's summary (and slow-log entry, if any) is
  // guaranteed to be visible to stats/profile readers.
  if (observe) {
    QuerySummary s;
    s.id = observer_->NextId();
    s.tenant = ticket->tenant_;
    s.document = ticket->document_;
    s.query = ticket->query_;
    s.fingerprint = FingerprintQuery(ticket->query_);
    s.code = code;
    s.admitted = true;
    s.queue_delay_ns = queue_delay;
    s.run_ns = run_ns;
    s.e2e_ns = e2e;
    s.threads = eo.num_threads;
    const engine::QueryProfile& prof = engine.LastProfile();
    s.work = WorkCounters::FromProfile(prof);
    s.paths = AccessPathMix::FromProfile(prof);
    if (corpus_->plan_cache() != nullptr) {
      uint64_t now = corpus_->plan_cache()->Stats().hits;
      s.plan_cache_hits = now > plan_hits_before ? now - plan_hits_before : 0;
    }
    if (corpus_->result_cache() != nullptr) {
      uint64_t now = corpus_->result_cache()->Stats().hits;
      s.result_cache_hits =
          now > result_hits_before ? now - result_hits_before : 0;
    }
    // Over-threshold queries capture full plan detail; the strings are
    // built only on this (already slow) path.
    SlowQueryRecord detail;
    bool slow = observer_->IsSlow(e2e) && !cancelled_while_queued;
    if (slow) {
      detail.explain_analyze = engine.LastExplainAnalyze();
      detail.profile_json = prof.ToJson();
      detail.metrics_json = prof.metrics_json;
    }
    observer_->RecordCompletion(std::move(s), slow ? &detail : nullptr);
  }
  ticket->Complete(std::move(result));

  std::lock_guard<std::mutex> lock(mu_);
  --running_;
  --in_flight_;
  DispatchLocked();
  if (in_flight_ == 0) idle_cv_.notify_all();
}

std::map<std::string, uint64_t> QueryService::ResourceGauges() const {
  std::map<std::string, uint64_t> g;
  {
    std::lock_guard<std::mutex> lock(mu_);
    g["service.queue_depth"] = queue_.size();
    g["service.queue_capacity"] = queue_.max_queued();
    g["service.running"] = running_;
    g["service.in_flight"] = in_flight_;
  }
  g["service.slots"] = pool_->NumThreads();
  g["service.guard_trips"] = guard_trips_.load(std::memory_order_relaxed);
  g["corpus.documents"] = corpus_->size();
  if (corpus_->plan_cache() != nullptr) {
    util::CacheStats s = corpus_->plan_cache()->Stats();
    g["corpus.plan_cache.entries"] = s.entries;
    g["corpus.plan_cache.bytes"] = s.bytes;
  }
  if (corpus_->result_cache() != nullptr) {
    util::CacheStats s = corpus_->result_cache()->Stats();
    g["corpus.result_cache.entries"] = s.entries;
    g["corpus.result_cache.bytes"] = s.bytes;
  }
  // DiskStore block-cache residency across every disk-backed document: the
  // out-of-core working set actually held in RAM vs its configured budget.
  uint64_t resident = 0;
  uint64_t budget = 0;
  for (const std::string& name : corpus_->Names()) {
    std::shared_ptr<const CorpusDocument> doc = corpus_->Get(name);
    if (doc != nullptr && doc->disk() != nullptr) {
      resident += doc->disk()->BlockCacheStats().bytes;
      budget += doc->disk()->budget_bytes();
    }
  }
  g["corpus.disk_resident_bytes"] = resident;
  g["corpus.disk_budget_bytes"] = budget;
  return g;
}

service::ObservabilityReport QueryService::ObservabilityReport() const {
  service::ObservabilityReport report;
  report.prometheus = metrics_.PrometheusText() +
                      util::PrometheusGaugesText(observer_->Gauges());
  report.recent_json =
      observer_->RecentJson(observer_->options().recorder_capacity);
  report.slow_json = observer_->SlowJson();
  report.top_text = observer_->TopText(10);
  report.windows_json = observer_->WindowsJson();
  return report;
}

}  // namespace service
}  // namespace blossomtree
