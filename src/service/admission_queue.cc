#include "service/admission_queue.h"

#include <utility>

namespace blossomtree {
namespace service {

bool AdmissionQueue::Push(const std::string& tenant,
                          std::shared_ptr<QueryTicket> ticket) {
  if (queued_ >= max_queued_) return false;
  auto it = queues_.find(tenant);
  if (it == queues_.end()) {
    it = queues_.emplace(tenant, std::deque<std::shared_ptr<QueryTicket>>())
             .first;
    tenant_order_.push_back(tenant);
  }
  it->second.push_back(std::move(ticket));
  ++queued_;
  return true;
}

std::shared_ptr<QueryTicket> AdmissionQueue::Pop() {
  if (queued_ == 0) return nullptr;
  // At least one tenant FIFO is non-empty, so the scan terminates within
  // one lap of tenant_order_.
  for (size_t scanned = 0; scanned < tenant_order_.size(); ++scanned) {
    const std::string& tenant = tenant_order_[rr_next_];
    rr_next_ = (rr_next_ + 1) % tenant_order_.size();
    std::deque<std::shared_ptr<QueryTicket>>& fifo = queues_[tenant];
    if (fifo.empty()) continue;
    std::shared_ptr<QueryTicket> ticket = std::move(fifo.front());
    fifo.pop_front();
    --queued_;
    return ticket;
  }
  return nullptr;
}

std::vector<std::shared_ptr<QueryTicket>> AdmissionQueue::DrainAll() {
  std::vector<std::shared_ptr<QueryTicket>> out;
  out.reserve(queued_);
  for (std::shared_ptr<QueryTicket> t = Pop(); t != nullptr; t = Pop()) {
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace service
}  // namespace blossomtree
