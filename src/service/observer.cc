#include "service/observer.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "util/trace.h"

namespace blossomtree {
namespace service {

namespace {

/// Minimal JSON string escaping (query texts carry quotes and backslashes).
void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

// Keys are escaped too: labeled series names ('x{status="ok"}') carry
// quotes and are used as JSON object keys in the window dumps.
void AppendField(std::string* out, std::string_view key, uint64_t value,
                 bool* first) {
  if (!*first) *out += ", ";
  *first = false;
  *out += '"';
  AppendJsonEscaped(out, key);
  *out += "\": ";
  *out += std::to_string(value);
}

void AppendField(std::string* out, std::string_view key, std::string_view value,
                 bool* first) {
  if (!*first) *out += ", ";
  *first = false;
  *out += '"';
  AppendJsonEscaped(out, key);
  *out += "\": \"";
  AppendJsonEscaped(out, value);
  *out += '"';
}

/// Fingerprints render as fixed-width hex strings: 64-bit values do not
/// round-trip through JSON doubles.
std::string FingerprintHex(uint64_t fp) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

std::string MillisString(uint64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(nanos) / 1e6);
  return buf;
}

bool HasLabelPrefix(const std::string& label, std::string_view prefix) {
  return label.size() >= prefix.size() &&
         std::string_view(label).substr(0, prefix.size()) == prefix;
}

}  // namespace

uint64_t FingerprintQuery(std::string_view query) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis.
  for (char c : query) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV-1a prime.
  }
  return h;
}

WorkCounters WorkCounters::FromProfile(const engine::QueryProfile& profile) {
  WorkCounters w;
  for (const engine::OperatorProfile& op : profile.operators) {
    w.nodes_scanned += op.stats.nodes_scanned;
    w.index_entries += op.stats.index_entries;
    w.comparisons += op.stats.comparisons;
    w.matches += op.stats.matches;
    w.nl_cells += op.stats.nl_cells;
  }
  return w;
}

AccessPathMix AccessPathMix::FromProfile(const engine::QueryProfile& profile) {
  AccessPathMix m;
  for (const engine::OperatorProfile& op : profile.operators) {
    if (HasLabelPrefix(op.label, "IndexSeek(")) {
      ++m.seek_ops;
      // A seek that touched no nodes and produced no matches probed an
      // empty candidate run: the DataGuide or the value index proved the
      // path dead before any document access.
      if (op.stats.nodes_scanned == 0 && op.stats.matches == 0) {
        ++m.empty_seeks;
      }
    } else if (HasLabelPrefix(op.label, "NokScan(")) {
      ++m.scan_ops;
    } else if (HasLabelPrefix(op.label, "MergedNokView(")) {
      ++m.merged_views;
    } else if (op.label == "MergedNokScan") {
      m.merged_scan = 1;
    }
  }
  return m;
}

std::string_view QuerySummary::StatusLabel() const {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kResourceExhausted:
      return admitted ? "resource_exhausted" : "rejected";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kCancelled:
      return "cancelled";
    default:
      return "failed";
  }
}

std::string QuerySummary::ToJson() const {
  std::string out = "{";
  bool first = true;
  AppendField(&out, "id", id, &first);
  AppendField(&out, "tenant", tenant, &first);
  AppendField(&out, "document", document, &first);
  AppendField(&out, "query", query, &first);
  AppendField(&out, "fingerprint", FingerprintHex(fingerprint), &first);
  AppendField(&out, "status", StatusLabel(), &first);
  AppendField(&out, "admitted", admitted ? uint64_t{1} : uint64_t{0}, &first);
  AppendField(&out, "queue_delay_ns", queue_delay_ns, &first);
  AppendField(&out, "run_ns", run_ns, &first);
  AppendField(&out, "e2e_ns", e2e_ns, &first);
  AppendField(&out, "threads", threads, &first);
  out += ", \"work\": {";
  bool wf = true;
  AppendField(&out, "nodes_scanned", work.nodes_scanned, &wf);
  AppendField(&out, "index_entries", work.index_entries, &wf);
  AppendField(&out, "comparisons", work.comparisons, &wf);
  AppendField(&out, "matches", work.matches, &wf);
  AppendField(&out, "nl_cells", work.nl_cells, &wf);
  out += "}, \"paths\": {";
  bool pf = true;
  AppendField(&out, "scan_ops", paths.scan_ops, &pf);
  AppendField(&out, "merged_views", paths.merged_views, &pf);
  AppendField(&out, "merged_scan", paths.merged_scan, &pf);
  AppendField(&out, "seek_ops", paths.seek_ops, &pf);
  AppendField(&out, "empty_seeks", paths.empty_seeks, &pf);
  out += "}";
  first = false;
  AppendField(&out, "plan_cache_hits", plan_cache_hits, &first);
  AppendField(&out, "result_cache_hits", result_cache_hits, &first);
  out += "}";
  return out;
}

std::string QuerySummary::ToLine() const {
  std::string out = "#" + std::to_string(id);
  out += " [";
  out += tenant;
  out += "/";
  out += document;
  out += "] ";
  out += StatusLabel();
  out += " e2e=" + MillisString(e2e_ns) + "ms";
  out += " qd=" + MillisString(queue_delay_ns) + "ms";
  out += " scanned=" + std::to_string(work.nodes_scanned);
  out += " seeks=" + std::to_string(paths.seek_ops);
  if (paths.empty_seeks > 0) {
    out += " (empty=" + std::to_string(paths.empty_seeks) + ")";
  }
  out += " matches=" + std::to_string(work.matches);
  out += " \"";
  out += query;
  out += "\"";
  return out;
}

std::string SlowQueryRecord::ToJson() const {
  std::string out = "{\"summary\": ";
  out += summary.ToJson();
  out += ", \"explain_analyze\": \"";
  AppendJsonEscaped(&out, explain_analyze);
  out += "\", \"profile\": ";
  out += profile_json.empty() ? "null" : profile_json;
  out += ", \"metrics\": ";
  out += metrics_json.empty() ? "null" : metrics_json;
  out += "}";
  return out;
}

void MetricsWindow::MergeFrom(const MetricsWindow& o) {
  // Gauges come from whichever constituent sampled last; compare before
  // the bounds below clobber end_ns so the choice is order-independent.
  if (std::make_pair(o.end_ns, o.seq) > std::make_pair(end_ns, seq)) {
    gauges = o.gauges;
  }
  seq = std::max(seq, o.seq);
  start_ns = std::min(start_ns, o.start_ns);
  end_ns = std::max(end_ns, o.end_ns);
  for (const auto& [name, delta] : o.counters) counters[name] += delta;
  for (const auto& [name, snap] : o.histograms) {
    histograms[name].MergeFrom(snap);
  }
}

std::string MetricsWindow::ToJson() const {
  std::string out = "{";
  bool first = true;
  AppendField(&out, "seq", seq, &first);
  AppendField(&out, "start_ns", start_ns, &first);
  AppendField(&out, "end_ns", end_ns, &first);
  out += ", \"counters\": {";
  bool cf = true;
  for (const auto& [name, delta] : counters) {
    if (delta == 0) continue;
    AppendField(&out, name, delta, &cf);
  }
  out += "}, \"histograms\": {";
  bool hf = true;
  for (const auto& [name, snap] : histograms) {
    if (snap.count == 0) continue;
    if (!hf) out += ", ";
    hf = false;
    out += '"';
    AppendJsonEscaped(&out, name);
    out += "\": ";
    out += snap.ToJson();
  }
  out += "}, \"gauges\": {";
  bool gf = true;
  for (const auto& [name, value] : gauges) {
    AppendField(&out, name, value, &gf);
  }
  out += "}}";
  return out;
}

ServiceObserver::ServiceObserver(util::MetricsRegistry* registry,
                                 ObserverOptions options)
    : registry_(registry),
      options_(options),
      epoch_(std::chrono::steady_clock::now()) {
  if (options_.recorder_shards == 0) options_.recorder_shards = 1;
  if (options_.recorder_capacity < options_.recorder_shards) {
    options_.recorder_capacity = options_.recorder_shards;
  }
  shard_capacity_ = (options_.recorder_capacity + options_.recorder_shards -
                     1) /
                    options_.recorder_shards;
  shards_.reserve(options_.recorder_shards);
  for (size_t i = 0; i < options_.recorder_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->ring.resize(shard_capacity_);
    shards_.push_back(std::move(shard));
  }
}

uint64_t ServiceObserver::NanosSinceEpoch() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void ServiceObserver::RecordCompletion(QuerySummary summary,
                                       SlowQueryRecord* detail) {
  if (!enabled()) return;
  if (summary.query.size() > options_.max_recorded_query_bytes) {
    summary.query.resize(options_.max_recorded_query_bytes);
  }

  // Status-labeled service rollups: every terminal outcome — including
  // admission-time rejections — lands in service.queries / service.e2e_ns
  // under its status label.
  std::string_view status = summary.StatusLabel();
  registry_
      ->GetCounter(util::LabeledMetricName("service.queries",
                                           {{"status", status}}))
      ->Increment();
  registry_
      ->GetHistogram(util::LabeledMetricName("service.e2e_ns",
                                             {{"status", status}}))
      ->Record(summary.e2e_ns);

  if (options_.tenant_metrics) {
    const std::string& t = summary.tenant;
    registry_
        ->GetCounter(util::LabeledMetricName(
            "service.tenant.queries", {{"tenant", t}, {"status", status}}))
        ->Increment();
    registry_
        ->GetCounter(util::LabeledMetricName(
            summary.admitted ? "service.tenant.admitted"
                             : "service.tenant.rejected",
            {{"tenant", t}}))
        ->Increment();
    registry_
        ->GetHistogram(util::LabeledMetricName("service.tenant.e2e_ns",
                                               {{"tenant", t}}))
        ->Record(summary.e2e_ns);
    if (summary.work.nodes_scanned > 0) {
      registry_
          ->GetCounter(util::LabeledMetricName(
              "service.tenant.nodes_scanned", {{"tenant", t}}))
          ->Add(summary.work.nodes_scanned);
    }
    if (summary.work.nl_cells > 0) {
      registry_
          ->GetCounter(util::LabeledMetricName("service.tenant.nl_cells",
                                               {{"tenant", t}}))
          ->Add(summary.work.nl_cells);
    }
  }

  if (detail != nullptr) {
    SlowQueryRecord rec = std::move(*detail);
    rec.summary = summary;
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow_.push_back(std::move(rec));
    while (slow_.size() > options_.slow_log_capacity) slow_.pop_front();
  }

  size_t shard_idx = static_cast<size_t>(summary.id) % shards_.size();
  Shard& shard = *shards_[shard_idx];
  size_t pos =
      static_cast<size_t>(summary.id / shards_.size()) % shard_capacity_;
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.ring[pos] = std::move(summary);
  ++shard.written;
}

MetricsWindow ServiceObserver::SampleWindow() {
  std::map<std::string, uint64_t> counters = registry_->CounterValues();
  std::map<std::string, util::HistogramSnapshot> hists =
      registry_->HistogramSnapshots();
  std::map<std::string, uint64_t> gauges = Gauges();

  std::lock_guard<std::mutex> lock(window_mu_);
  MetricsWindow w;
  w.seq = ++window_seq_;
  w.start_ns = last_sample_ns_;
  w.end_ns = NanosSinceEpoch();
  for (const auto& [name, value] : counters) {
    auto it = last_counters_.find(name);
    uint64_t prev = it == last_counters_.end() ? 0 : it->second;
    if (value > prev) w.counters[name] = value - prev;
  }
  for (const auto& [name, snap] : hists) {
    auto it = last_histograms_.find(name);
    util::HistogramSnapshot delta = snap;
    if (it != last_histograms_.end()) {
      const util::HistogramSnapshot& prev = it->second;
      delta.count -= std::min(delta.count, prev.count);
      delta.sum -= std::min(delta.sum, prev.sum);
      for (int i = 0; i < util::HistogramSnapshot::kNumBuckets; ++i) {
        delta.buckets[i] -= std::min(delta.buckets[i], prev.buckets[i]);
      }
    }
    if (delta.count > 0) w.histograms[name] = delta;
  }
  w.gauges = std::move(gauges);
  last_counters_ = std::move(counters);
  last_histograms_ = std::move(hists);
  last_sample_ns_ = w.end_ns;
  windows_.push_back(w);
  while (windows_.size() > options_.window_capacity) windows_.pop_front();
  return w;
}

std::map<std::string, uint64_t> ServiceObserver::Gauges() const {
  std::map<std::string, uint64_t> gauges;
  if (gauge_sampler_) gauges = gauge_sampler_();
  gauges["observer.recorder_entries"] =
      std::min<uint64_t>(TotalRecorded(), options_.recorder_capacity);
  gauges["observer.recorder_dropped"] = RecorderDropped();
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    gauges["observer.slow_entries"] = slow_.size();
  }
  gauges["trace.dropped_events"] = util::Tracer::Get().DroppedEvents();
  return gauges;
}

std::vector<QuerySummary> ServiceObserver::Recent(size_t n) const {
  std::vector<QuerySummary> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const QuerySummary& s : shard->ring) {
      if (s.id != 0) out.push_back(s);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const QuerySummary& a, const QuerySummary& b) {
              return a.id > b.id;
            });
  if (out.size() > n) out.resize(n);
  return out;
}

bool ServiceObserver::FindSummary(uint64_t id, QuerySummary* out) const {
  if (id == 0 || shards_.empty()) return false;
  const Shard& shard = *shards_[static_cast<size_t>(id) % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  size_t pos = static_cast<size_t>(id / shards_.size()) % shard_capacity_;
  if (shard.ring[pos].id == id) {
    *out = shard.ring[pos];
    return true;
  }
  return false;
}

std::vector<SlowQueryRecord> ServiceObserver::SlowLog() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  std::vector<SlowQueryRecord> out(slow_.rbegin(), slow_.rend());
  return out;
}

bool ServiceObserver::FindSlow(uint64_t id, SlowQueryRecord* out) const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  for (const SlowQueryRecord& rec : slow_) {
    if (rec.summary.id == id) {
      *out = rec;
      return true;
    }
  }
  return false;
}

std::vector<MetricsWindow> ServiceObserver::Windows() const {
  std::lock_guard<std::mutex> lock(window_mu_);
  return std::vector<MetricsWindow>(windows_.begin(), windows_.end());
}

std::vector<TenantRollup> ServiceObserver::TenantRollups() const {
  std::map<std::string, TenantRollup> by_tenant;
  std::map<std::string, util::Histogram> e2e;
  for (const QuerySummary& s : Recent(options_.recorder_capacity)) {
    TenantRollup& r = by_tenant[s.tenant];
    r.tenant = s.tenant;
    if (s.admitted) ++r.admitted;
    switch (s.code) {
      case StatusCode::kOk:
        ++r.completed;
        break;
      case StatusCode::kResourceExhausted:
        if (s.admitted) {
          ++r.failed;
        } else {
          ++r.rejected;
        }
        break;
      case StatusCode::kNotFound:
        ++r.not_found;
        break;
      case StatusCode::kCancelled:
        ++r.cancelled;
        break;
      default:
        ++r.failed;
    }
    r.total_e2e_ns += s.e2e_ns;
    r.work.MergeFrom(s.work);
    e2e[s.tenant].Record(s.e2e_ns);
  }
  std::vector<TenantRollup> out;
  out.reserve(by_tenant.size());
  for (auto& [tenant, rollup] : by_tenant) {
    rollup.e2e = e2e[tenant].Snapshot();
    out.push_back(std::move(rollup));
  }
  return out;
}

std::vector<FingerprintRollup> ServiceObserver::TopFingerprints(
    size_t n) const {
  std::map<uint64_t, FingerprintRollup> by_fp;
  for (const QuerySummary& s : Recent(options_.recorder_capacity)) {
    FingerprintRollup& r = by_fp[s.fingerprint];
    r.fingerprint = s.fingerprint;
    if (r.example_query.empty()) r.example_query = s.query;
    ++r.count;
    if (s.code == StatusCode::kOk) {
      ++r.ok_count;
    } else {
      ++r.error_count;
    }
    r.total_e2e_ns += s.e2e_ns;
    r.work.MergeFrom(s.work);
    r.paths.MergeFrom(s.paths);
  }
  std::vector<FingerprintRollup> out;
  out.reserve(by_fp.size());
  for (auto& [fp, rollup] : by_fp) out.push_back(std::move(rollup));
  std::sort(out.begin(), out.end(),
            [](const FingerprintRollup& a, const FingerprintRollup& b) {
              if (a.total_e2e_ns != b.total_e2e_ns) {
                return a.total_e2e_ns > b.total_e2e_ns;
              }
              return a.fingerprint < b.fingerprint;
            });
  if (out.size() > n) out.resize(n);
  return out;
}

uint64_t ServiceObserver::TotalRecorded() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->written;
  }
  return total;
}

uint64_t ServiceObserver::RecorderDropped() const {
  uint64_t dropped = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->written > shard_capacity_) {
      dropped += shard->written - shard_capacity_;
    }
  }
  return dropped;
}

std::string ServiceObserver::RecentJson(size_t n) const {
  std::string out = "{\"recent\": [";
  bool first = true;
  for (const QuerySummary& s : Recent(n)) {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
    out += s.ToJson();
  }
  out += "\n], \"total_recorded\": " + std::to_string(TotalRecorded());
  out += ", \"dropped\": " + std::to_string(RecorderDropped());
  out += "}\n";
  return out;
}

std::string ServiceObserver::SlowJson() const {
  std::string out = "{\"threshold_ns\": " +
                    std::to_string(options_.slow_threshold_ns);
  out += ", \"slow\": [";
  bool first = true;
  for (const SlowQueryRecord& rec : SlowLog()) {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
    out += rec.ToJson();
  }
  out += "\n]}\n";
  return out;
}

std::string ServiceObserver::WindowsJson() const {
  std::string out = "{\"windows\": [";
  bool first = true;
  for (const MetricsWindow& w : Windows()) {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
    out += w.ToJson();
  }
  out += "\n]}\n";
  return out;
}

std::string ServiceObserver::TopText(size_t n) const {
  std::string out = "tenants (recorder window):\n";
  for (const TenantRollup& r : TenantRollups()) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  %-12s admitted=%llu completed=%llu rejected=%llu "
                  "not_found=%llu cancelled=%llu failed=%llu "
                  "p50=%sms p99=%sms scanned=%llu\n",
                  r.tenant.c_str(),
                  static_cast<unsigned long long>(r.admitted),
                  static_cast<unsigned long long>(r.completed),
                  static_cast<unsigned long long>(r.rejected),
                  static_cast<unsigned long long>(r.not_found),
                  static_cast<unsigned long long>(r.cancelled),
                  static_cast<unsigned long long>(r.failed),
                  MillisString(r.e2e.Quantile(0.5)).c_str(),
                  MillisString(r.e2e.Quantile(0.99)).c_str(),
                  static_cast<unsigned long long>(r.work.nodes_scanned));
    out += buf;
  }
  out += "top queries by total e2e (recorder window):\n";
  for (const FingerprintRollup& r : TopFingerprints(n)) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "  %s n=%llu ok=%llu err=%llu total=%sms scanned=%llu "
                  "seeks=%llu empty=%llu\n    ",
                  FingerprintHex(r.fingerprint).c_str(),
                  static_cast<unsigned long long>(r.count),
                  static_cast<unsigned long long>(r.ok_count),
                  static_cast<unsigned long long>(r.error_count),
                  MillisString(r.total_e2e_ns).c_str(),
                  static_cast<unsigned long long>(r.work.nodes_scanned),
                  static_cast<unsigned long long>(r.paths.seek_ops),
                  static_cast<unsigned long long>(r.paths.empty_seeks));
    out += buf;
    out += r.example_query;
    out += "\n";
  }
  return out;
}

}  // namespace service
}  // namespace blossomtree
