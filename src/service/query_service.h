#ifndef BLOSSOMTREE_SERVICE_QUERY_SERVICE_H_
#define BLOSSOMTREE_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "engine/engine.h"
#include "engine/query_profile.h"
#include "service/admission_queue.h"
#include "service/corpus.h"
#include "service/observer.h"
#include "util/metrics.h"
#include "util/resource_guard.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace blossomtree {
namespace service {

/// \brief A tenant class: the named limits profile sessions inherit and the
/// unit of fair dispatch (DESIGN.md §12). All sessions of one tenant share
/// one admission FIFO; dispatch is round-robin across tenant classes.
struct TenantClass {
  std::string name;
  util::QueryLimits limits;
};

/// \brief One client's handle on the service: identifies the tenant class
/// (for fair dispatch) and carries the per-query QueryLimits every query
/// submitted through it is governed by. Created by
/// QueryService::CreateSession; cheap, and safe to drop while queries
/// submitted through it are still in flight (tickets own everything they
/// need).
class Session {
 public:
  uint64_t id() const { return id_; }
  const std::string& tenant() const { return tenant_; }
  const util::QueryLimits& limits() const { return limits_; }

  /// \brief Per-session override of the inherited tenant limits (takes
  /// effect for queries submitted after the call).
  void set_limits(const util::QueryLimits& limits) { limits_ = limits; }

 private:
  friend class QueryService;
  Session(uint64_t id, std::string tenant, util::QueryLimits limits)
      : id_(id), tenant_(std::move(tenant)), limits_(limits) {}

  uint64_t id_;
  std::string tenant_;
  util::QueryLimits limits_;
};

/// \brief The handle returned by QueryService::Submit: resolves to the
/// query's result once it has run (or been rejected / cancelled / failed).
///
/// A ticket is *always* completed — admission rejection, cancellation,
/// document-not-found, and evaluation errors all surface as a Status
/// through Wait(); nothing is ever dropped silently. Thread-safe.
class QueryTicket {
 public:
  enum class State {
    kQueued,   ///< Admitted, waiting for a slot.
    kRunning,  ///< Evaluating on a pool worker.
    kDone,     ///< Result (or error status) available.
  };

  /// \brief Blocks until the query has completed; returns the serialized
  /// XML result or the terminal error status (kResourceExhausted for
  /// admission rejection or a tripped per-query limit, kCancelled for
  /// cancellation, kNotFound for an unknown document, ...).
  const Result<std::string>& Wait() const;

  State state() const;
  bool done() const { return state() == State::kDone; }

  /// \brief Requests cooperative cancellation: a queued query completes
  /// with kCancelled without running; a running query's engine observes
  /// the token at its next batch boundary (DESIGN.md §9). Safe from any
  /// thread, idempotent, and a no-op once the query is done.
  void Cancel();

  const std::string& query() const { return query_; }
  const std::string& document() const { return document_; }
  const std::string& tenant() const { return tenant_; }

  /// \brief Nanoseconds spent waiting for a slot / end to end. Valid once
  /// done; rejected queries report 0/0.
  uint64_t queue_delay_ns() const;
  uint64_t e2e_ns() const;

  /// \brief The query's per-operator profile (empty unless the service was
  /// built with ServiceOptions::collect_profile). Valid once done.
  const engine::QueryProfile& profile() const { return profile_; }

 private:
  friend class QueryService;
  friend struct QueryTicketTestPeer;  // Mints bare tickets for queue tests.
  QueryTicket(std::string tenant, std::string document, std::string query,
              util::QueryLimits limits)
      : tenant_(std::move(tenant)),
        document_(std::move(document)),
        query_(std::move(query)),
        limits_(limits) {}

  /// Completes the ticket (first completion wins) and wakes waiters.
  void Complete(Result<std::string> result);

  const std::string tenant_;
  const std::string document_;
  const std::string query_;
  const util::QueryLimits limits_;
  /// Resolved at submit time so a concurrent Corpus::Evict cannot strand a
  /// queued query: the ticket co-owns its document.
  std::shared_ptr<const CorpusDocument> doc_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  State state_ = State::kQueued;           ///< Guarded by mu_.
  bool cancel_requested_ = false;          ///< Guarded by mu_.
  engine::BlossomTreeEngine* running_engine_ = nullptr;  ///< Guarded by mu_.
  Result<std::string> result_{std::string{}};  ///< Guarded by mu_ until done.
  engine::QueryProfile profile_;               ///< Written before done.
  std::chrono::steady_clock::time_point submit_time_{};
  uint64_t queue_delay_ns_ = 0;  ///< Written before done.
  uint64_t e2e_ns_ = 0;          ///< Written before done.
};

/// \brief Service-level knobs (DESIGN.md §12).
struct ServiceOptions {
  /// Concurrently running queries — the worker count of the service's
  /// shared execution pool. 0 = hardware concurrency.
  size_t slots = 0;
  /// Bound on *waiting* (admitted but not yet running) queries across all
  /// tenants; a submit past the bound is rejected with kResourceExhausted.
  /// 0 disables waiting entirely: a query either starts immediately or is
  /// rejected.
  size_t max_queue = 64;
  /// Intra-query parallelism for each running query, layered under the
  /// inter-query slots: >1 creates a second shared pool that partitioned
  /// NoK scans of all running queries fan out onto. Kept separate from the
  /// execution pool by construction — a query task blocks in ParallelFor
  /// until its partitions finish, so sharing one pool for both layers
  /// could deadlock with every worker blocked waiting for sub-tasks that
  /// can no longer be scheduled.
  unsigned intra_query_threads = 1;
  /// Attach each query's per-operator QueryProfile to its ticket.
  bool collect_profile = false;
  /// Record service.* counters, queue-delay and latency histograms, and
  /// per-query trace spans (spans only land when util::Tracer is enabled).
  bool collect_metrics = true;
  /// The observability plane (DESIGN.md §15): query flight recorder, slow
  /// log, per-tenant labeled metrics, windowed snapshots. On by default —
  /// recording is once-per-completion, off the evaluation path.
  ObserverOptions observer;
};

/// \brief The concurrent query service (DESIGN.md §12): runs sessions'
/// queries over a shared Corpus on one shared execution pool, with
/// admission control (bounded queue, fair FIFO-per-tenant dispatch,
/// kResourceExhausted rejection) and cooperative cancellation of queued
/// and running queries.
///
/// Every admitted query evaluates on a fresh, per-query
/// engine::BlossomTreeEngine wired to the corpus-wide plan / NoK result
/// caches, so its result is byte-identical to what a standalone serial
/// engine over the same document returns — concurrency and caching change
/// latency, never results (the ServiceDeterminism tests pin this).
class QueryService {
 public:
  QueryService(Corpus* corpus, ServiceOptions options = {});

  /// \brief Cancels queued queries, waits for running ones to finish
  /// cooperatively, then joins the pools.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// \brief Defines (or redefines) a tenant class. Sessions created
  /// afterwards inherit its limits.
  void DefineTenant(const std::string& name, const util::QueryLimits& limits);

  /// \brief Creates a session of `tenant`. An undefined tenant name gets
  /// default (unlimited) QueryLimits and still dispatches fairly under its
  /// own name.
  std::shared_ptr<Session> CreateSession(const std::string& tenant);

  /// \brief Submits `query` against corpus document `document`. Never
  /// returns null: admission rejection (queue full, unknown document,
  /// shutdown) yields an already-completed ticket carrying the error.
  std::shared_ptr<QueryTicket> Submit(const Session& session,
                                      const std::string& document,
                                      std::string query);

  /// \brief Submit + Wait.
  Result<std::string> Execute(const Session& session,
                              const std::string& document, std::string query);

  /// \brief Waits until every ticket submitted so far has completed.
  void Drain();

  size_t slots() const { return pool_->NumThreads(); }
  Corpus* corpus() const { return corpus_; }

  /// \brief service.* counters and histograms: service.admitted /
  /// rejected / completed / cancelled / failed counters,
  /// service.queue_delay_ns / service.run_ns / service.e2e_ns histograms.
  util::MetricsRegistry& metrics() { return metrics_; }
  const util::MetricsRegistry& metrics() const { return metrics_; }

  /// \brief The observability plane (DESIGN.md §15). Never null; a no-op
  /// recorder when ObserverOptions::enabled is false.
  ServiceObserver* observer() { return observer_.get(); }
  const ServiceObserver* observer() const { return observer_.get(); }

  /// \brief Renders every observability surface at once (DESIGN.md §15):
  /// the Prometheus text exposition (registry series + sampled gauges),
  /// the flight-recorder and slow-log JSON dumps, the per-tenant /
  /// per-fingerprint rollup text, and the windowed snapshots. Safe to call
  /// while traffic is running.
  service::ObservabilityReport ObservabilityReport() const;

  /// \brief Point-in-time resource gauges — admission-queue occupancy,
  /// running/in-flight counts, corpus cache and DiskStore residency, guard
  /// trips. This is the sampler the observer's windows and exposition use.
  std::map<std::string, uint64_t> ResourceGauges() const;

 private:
  /// Completes `ticket` as rejected/failed before admission (counts it,
  /// no dispatch).
  std::shared_ptr<QueryTicket> Reject(std::shared_ptr<QueryTicket> ticket,
                                      Status status);

  /// Starts queued queries while slots are free (mu_ held).
  void DispatchLocked();

  /// Pool task: evaluates one admitted query end to end.
  void RunQuery(const std::shared_ptr<QueryTicket>& ticket);

  Corpus* corpus_;
  ServiceOptions options_;
  util::MetricsRegistry metrics_;
  /// Declared after metrics_ (it records into the registry) and before the
  /// pools (running queries record completions until the pools join).
  std::unique_ptr<ServiceObserver> observer_;
  /// Queries whose per-query resource guard tripped while running
  /// (kResourceExhausted after admission) — exposed as a gauge.
  std::atomic<uint64_t> guard_trips_{0};
  /// Shared second-layer pool for intra-query parallelism (see
  /// ServiceOptions::intra_query_threads); null when queries run serially.
  std::unique_ptr<util::ThreadPool> intra_pool_;
  /// The shared execution pool: one worker per slot, one task per running
  /// query. Declared after intra_pool_ so shutdown joins query tasks while
  /// their intra-query pool is still alive.
  std::unique_ptr<util::ThreadPool> pool_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;  ///< Signalled when in_flight_ drops.
  AdmissionQueue queue_;             ///< Guarded by mu_.
  size_t running_ = 0;               ///< Dispatched, not yet finished.
  size_t in_flight_ = 0;             ///< Queued + running (for Drain).
  bool stopping_ = false;
  uint64_t next_session_id_ = 1;
  std::map<std::string, TenantClass> tenants_;  ///< Guarded by mu_.
};

}  // namespace service
}  // namespace blossomtree

#endif  // BLOSSOMTREE_SERVICE_QUERY_SERVICE_H_
