#ifndef BLOSSOMTREE_SERVICE_ADMISSION_QUEUE_H_
#define BLOSSOMTREE_SERVICE_ADMISSION_QUEUE_H_

#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace blossomtree {
namespace service {

class QueryTicket;

/// \brief The QueryService's bounded wait queue with fair FIFO-per-tenant
/// dispatch (DESIGN.md §12).
///
/// Structure: one FIFO per tenant class plus a round-robin cursor over the
/// tenants that currently have queued work. Push appends to the caller's
/// tenant FIFO (refusing once the *global* bound is reached — admission
/// control is a total-queue property, so one tenant can fill the queue but
/// never starve another's dispatch order); Pop serves tenants round-robin,
/// oldest query first within a tenant. A tenant that floods N queries
/// therefore delays a second tenant's next query by at most one dispatch,
/// not N.
///
/// NOT internally synchronized: the QueryService calls it under its own
/// mutex (the queue is always manipulated together with the running-slot
/// count, so a second lock would buy nothing). The determinism of Pop —
/// a pure function of the Push/Pop history — is what the AdmissionQueueTest
/// fairness cases pin down without threads.
class AdmissionQueue {
 public:
  /// \brief `max_queued` bounds the total queued (not yet dispatched)
  /// queries across all tenants; 0 means no waiting at all (a query is
  /// either dispatched immediately or rejected).
  explicit AdmissionQueue(size_t max_queued) : max_queued_(max_queued) {}

  /// \brief Appends to `tenant`'s FIFO. Returns false — reject with
  /// kResourceExhausted — when the global bound is already met.
  bool Push(const std::string& tenant, std::shared_ptr<QueryTicket> ticket);

  /// \brief Removes and returns the next ticket in fair order: round-robin
  /// over tenants with queued work (in first-seen order), FIFO within each
  /// tenant. Returns nullptr when empty.
  std::shared_ptr<QueryTicket> Pop();

  /// \brief Removes every queued ticket, in the order Pop would have
  /// produced (used by shutdown to fail pending queries as cancelled).
  std::vector<std::shared_ptr<QueryTicket>> DrainAll();

  size_t size() const { return queued_; }
  bool empty() const { return queued_ == 0; }
  size_t max_queued() const { return max_queued_; }

 private:
  size_t max_queued_;
  size_t queued_ = 0;
  /// Tenant FIFOs. Entries persist across empty/non-empty transitions so a
  /// tenant's round-robin position is stable for the queue's lifetime.
  std::map<std::string, std::deque<std::shared_ptr<QueryTicket>>> queues_;
  /// Round-robin order (first Push order) and cursor into it.
  std::vector<std::string> tenant_order_;
  size_t rr_next_ = 0;
};

}  // namespace service
}  // namespace blossomtree

#endif  // BLOSSOMTREE_SERVICE_ADMISSION_QUEUE_H_
