#ifndef BLOSSOMTREE_NESTEDLIST_NESTED_LIST_H_
#define BLOSSOMTREE_NESTEDLIST_NESTED_LIST_H_

#include <string>
#include <vector>

#include "pattern/blossom_tree.h"
#include "xml/document.h"

namespace blossomtree {
namespace nestedlist {

struct Entry;

/// \brief The "[]" grouping of the paper's NestedList notation: all matches
/// of one returning node under one parent match, in document order.
using Group = std::vector<Entry>;

/// \brief One matched node of a returning (Dewey-numbered) pattern vertex,
/// together with the groups of matches for each child slot — the concrete
/// realization of Figure 6's sibling/child pointers: `groups[i]` is the
/// child-pointer array entry for the i-th child slot, and the entries inside
/// a Group form the sibling list.
struct Entry {
  /// The matched XML node; kNullNode marks a placeholder (paper Example 4:
  /// the part of the global structure another NoK will fill).
  xml::NodeId node = xml::kNullNode;

  /// Aligned with pattern::Slot::children of this entry's slot.
  std::vector<Group> groups;

  bool IsPlaceholder() const { return node == xml::kNullNode; }
};

/// \brief A NestedList (paper Definition 2): the nested-list representation
/// of one pattern-tree match, leveraged by the grouping notation "[]".
///
/// `tops` is aligned with a context-dependent list of top slots: the global
/// returning tree's top slots for full results, or a NoK pattern tree's
/// local top slots for NoK-operator outputs. Operators carry that slot list
/// alongside the data.
struct NestedList {
  std::vector<Group> tops;
};

/// \brief Creates a placeholder entry for `slot`: an unfilled node with one
/// empty group per child slot (rendered "((),())" in the paper's notation).
Entry MakePlaceholderEntry(const pattern::BlossomTree& tree,
                           pattern::SlotId slot);

/// \brief Creates a NestedList over `top_slots` where every top group holds
/// a single placeholder entry — the "initial NestedList" of paper §3.3.
NestedList MakePlaceholder(const pattern::BlossomTree& tree,
                           const std::vector<pattern::SlotId>& top_slots);

/// \brief Labels nodes with the paper's t_i convention: the i-th occurrence
/// of tag t in document order is "t" + i (e.g. "b2").
class OccurrenceLabeler {
 public:
  explicit OccurrenceLabeler(const xml::Document* doc) : doc_(doc) {}
  std::string operator()(xml::NodeId n) const;

 private:
  const xml::Document* doc_;
};

/// \brief Serializes a NestedList in the paper's exact notation:
/// groups render as "()" (empty), the bare entry (singleton), or
/// "[e1,e2,...]"; entries render as "(label,group,group,...)" with the
/// label omitted for placeholders. A single top group renders undecorated;
/// multiple top groups are wrapped in "(...)".
template <typename Labeler>
std::string ToString(const NestedList& list, const Labeler& label);

/// \brief Serializes one entry (see ToString).
template <typename Labeler>
std::string EntryToString(const Entry& entry, const Labeler& label);

// -- Implementation -----------------------------------------------------------

namespace internal {

template <typename Labeler>
void RenderEntry(const Entry& e, const Labeler& label, std::string* out);

template <typename Labeler>
void RenderGroup(const Group& g, const Labeler& label, std::string* out) {
  if (g.empty()) {
    out->append("()");
    return;
  }
  if (g.size() == 1) {
    RenderEntry(g[0], label, out);
    return;
  }
  out->push_back('[');
  for (size_t i = 0; i < g.size(); ++i) {
    if (i > 0) out->push_back(',');
    RenderEntry(g[i], label, out);
  }
  out->push_back(']');
}

template <typename Labeler>
void RenderEntry(const Entry& e, const Labeler& label, std::string* out) {
  out->push_back('(');
  bool first = true;
  if (!e.IsPlaceholder()) {
    out->append(label(e.node));
    first = false;
  }
  for (const Group& g : e.groups) {
    if (!first) out->push_back(',');
    first = false;
    RenderGroup(g, label, out);
  }
  out->push_back(')');
}

}  // namespace internal

template <typename Labeler>
std::string EntryToString(const Entry& entry, const Labeler& label) {
  std::string out;
  internal::RenderEntry(entry, label, &out);
  return out;
}

template <typename Labeler>
std::string ToString(const NestedList& list, const Labeler& label) {
  std::string out;
  if (list.tops.size() == 1) {
    internal::RenderGroup(list.tops[0], label, &out);
    return out;
  }
  out.push_back('(');
  for (size_t i = 0; i < list.tops.size(); ++i) {
    if (i > 0) out.push_back(',');
    internal::RenderGroup(list.tops[i], label, &out);
  }
  out.push_back(')');
  return out;
}

}  // namespace nestedlist
}  // namespace blossomtree

#endif  // BLOSSOMTREE_NESTEDLIST_NESTED_LIST_H_
