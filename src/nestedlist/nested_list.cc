#include "nestedlist/nested_list.h"

#include <algorithm>

namespace blossomtree {
namespace nestedlist {

Entry MakePlaceholderEntry(const pattern::BlossomTree& tree,
                           pattern::SlotId slot) {
  Entry e;
  e.node = xml::kNullNode;
  e.groups.resize(tree.slot(slot).children.size());
  return e;
}

NestedList MakePlaceholder(const pattern::BlossomTree& tree,
                           const std::vector<pattern::SlotId>& top_slots) {
  NestedList out;
  out.tops.reserve(top_slots.size());
  for (pattern::SlotId s : top_slots) {
    Group g;
    g.push_back(MakePlaceholderEntry(tree, s));
    out.tops.push_back(std::move(g));
  }
  return out;
}

std::string OccurrenceLabeler::operator()(xml::NodeId n) const {
  if (!doc_->IsElement(n)) return "#text";
  const std::string& tag = doc_->TagName(n);
  const auto& index = doc_->TagIndex(doc_->Tag(n));
  auto it = std::lower_bound(index.begin(), index.end(), n);
  size_t rank = static_cast<size_t>(it - index.begin()) + 1;
  return tag + std::to_string(rank);
}

}  // namespace nestedlist
}  // namespace blossomtree
