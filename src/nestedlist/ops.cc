#include "nestedlist/ops.h"

#include <algorithm>
#include <unordered_map>

namespace blossomtree {
namespace nestedlist {

using pattern::BlossomTree;
using pattern::EdgeMode;
using pattern::SlotId;

std::vector<SlotId> SlotChain(const BlossomTree& tree,
                              const std::vector<SlotId>& tops,
                              SlotId target) {
  std::vector<SlotId> chain;
  SlotId s = target;
  while (s != pattern::kNoSlot) {
    chain.push_back(s);
    if (std::find(tops.begin(), tops.end(), s) != tops.end()) {
      std::reverse(chain.begin(), chain.end());
      return chain;
    }
    s = tree.slot(s).parent;
  }
  return {};  // target not reachable from tops
}

size_t ChildIndex(const BlossomTree& tree, SlotId parent, SlotId child) {
  const auto& kids = tree.slot(parent).children;
  auto it = std::find(kids.begin(), kids.end(), child);
  return static_cast<size_t>(it - kids.begin());
}

namespace {

/// Walks `group` down the slot chain, calling fn on entries at the end.
void VisitConst(const BlossomTree& tree, const Group& group,
                const std::vector<SlotId>& chain, size_t depth,
                const std::function<void(const Entry&)>& fn) {
  if (depth + 1 == chain.size()) {
    for (const Entry& e : group) fn(e);
    return;
  }
  size_t idx = ChildIndex(tree, chain[depth], chain[depth + 1]);
  for (const Entry& e : group) {
    if (idx < e.groups.size()) {
      VisitConst(tree, e.groups[idx], chain, depth + 1, fn);
    }
  }
}

void VisitMutable(const BlossomTree& tree, Group* group,
                  const std::vector<SlotId>& chain, size_t depth,
                  const std::function<void(Entry*)>& fn) {
  if (depth + 1 == chain.size()) {
    for (Entry& e : *group) fn(&e);
    return;
  }
  size_t idx = ChildIndex(tree, chain[depth], chain[depth + 1]);
  for (Entry& e : *group) {
    if (idx < e.groups.size()) {
      VisitMutable(tree, &e.groups[idx], chain, depth + 1, fn);
    }
  }
}

/// Removes entries at the chain end for which `keep` is false; then removes
/// ancestors whose mandatory group at the pruned child became empty.
/// Returns false iff `group` itself became empty while the edge into
/// chain[depth] is mandatory.
bool PruneRec(const BlossomTree& tree, Group* group,
              const std::vector<SlotId>& chain, size_t depth,
              const std::function<bool(const Entry&)>& keep) {
  if (depth + 1 == chain.size()) {
    group->erase(std::remove_if(group->begin(), group->end(),
                                [&](const Entry& e) { return !keep(e); }),
                 group->end());
  } else {
    size_t idx = ChildIndex(tree, chain[depth], chain[depth + 1]);
    bool child_mandatory =
        tree.slot(chain[depth + 1]).mode == EdgeMode::kFor;
    group->erase(
        std::remove_if(group->begin(), group->end(),
                       [&](Entry& e) {
                         if (idx >= e.groups.size()) return false;
                         bool ok = PruneRec(tree, &e.groups[idx], chain,
                                            depth + 1, keep);
                         // A placeholder frame never fails mandatory checks:
                         // its slots are simply not filled yet.
                         if (e.IsPlaceholder()) return false;
                         return child_mandatory && !ok;
                       }),
        group->end());
  }
  return !group->empty();
}

}  // namespace

void ForEachEntry(const BlossomTree& tree, const std::vector<SlotId>& tops,
                  const NestedList& list, SlotId target,
                  const std::function<void(const Entry&)>& fn) {
  std::vector<SlotId> chain = SlotChain(tree, tops, target);
  if (chain.empty()) return;
  size_t top_index = static_cast<size_t>(
      std::find(tops.begin(), tops.end(), chain[0]) - tops.begin());
  if (top_index >= list.tops.size()) return;
  VisitConst(tree, list.tops[top_index], chain, 0, fn);
}

void ForEachEntryMutable(const BlossomTree& tree,
                         const std::vector<SlotId>& tops, NestedList* list,
                         SlotId target,
                         const std::function<void(Entry*)>& fn) {
  std::vector<SlotId> chain = SlotChain(tree, tops, target);
  if (chain.empty()) return;
  size_t top_index = static_cast<size_t>(
      std::find(tops.begin(), tops.end(), chain[0]) - tops.begin());
  if (top_index >= list->tops.size()) return;
  VisitMutable(tree, &list->tops[top_index], chain, 0, fn);
}

std::vector<xml::NodeId> Project(const BlossomTree& tree,
                                 const std::vector<SlotId>& tops,
                                 const NestedList& list, SlotId target) {
  std::vector<xml::NodeId> out;
  ForEachEntry(tree, tops, list, target, [&](const Entry& e) {
    if (!e.IsPlaceholder()) out.push_back(e.node);
  });
  return out;
}

std::vector<xml::NodeId> ProjectSequence(const BlossomTree& tree,
                                         const std::vector<SlotId>& tops,
                                         const std::vector<NestedList>& lists,
                                         SlotId target) {
  std::vector<xml::NodeId> out;
  for (const NestedList& l : lists) {
    auto part = Project(tree, tops, l, target);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

bool Select(const BlossomTree& tree, const std::vector<SlotId>& tops,
            NestedList* list, SlotId target,
            const std::function<bool(xml::NodeId, size_t)>& pred) {
  std::vector<SlotId> chain = SlotChain(tree, tops, target);
  if (chain.empty()) return false;
  size_t top_index = static_cast<size_t>(
      std::find(tops.begin(), tops.end(), chain[0]) - tops.begin());
  if (top_index >= list->tops.size()) return false;

  // Positions are 1-based over the whole projected list (paper's
  // σ_{position(1.1)=2} example), so number entries before pruning.
  size_t counter = 0;
  std::unordered_map<const Entry*, size_t> positions;
  VisitConst(tree, list->tops[top_index], chain, 0,
             [&](const Entry& e) { positions.emplace(&e, ++counter); });

  auto keep = [&](const Entry& e) {
    auto it = positions.find(&e);
    if (it == positions.end()) return true;
    return e.IsPlaceholder() || pred(e.node, it->second);
  };
  bool ok = PruneRec(tree, &list->tops[top_index], chain, 0, keep);
  bool top_mandatory = tree.slot(chain[0]).mode == EdgeMode::kFor;
  return ok || !top_mandatory;
}

bool SelectPosition(const BlossomTree& tree, const std::vector<SlotId>& tops,
                    NestedList* list, SlotId target, size_t position) {
  return Select(tree, tops, list, target,
                [position](xml::NodeId, size_t pos) {
                  return pos == position;
                });
}

bool EnforceMandatory(const BlossomTree& tree,
                      const std::vector<SlotId>& tops, NestedList* list,
                      SlotId target, size_t child_index) {
  std::vector<SlotId> chain = SlotChain(tree, tops, target);
  if (chain.empty()) return false;
  size_t top_index = static_cast<size_t>(
      std::find(tops.begin(), tops.end(), chain[0]) - tops.begin());
  if (top_index >= list->tops.size()) return false;
  auto keep = [&](const Entry& e) {
    return e.IsPlaceholder() || child_index >= e.groups.size() ||
           !e.groups[child_index].empty();
  };
  bool ok = PruneRec(tree, &list->tops[top_index], chain, 0, keep);
  bool top_mandatory = tree.slot(chain[0]).mode == EdgeMode::kFor;
  return ok || !top_mandatory;
}

NestedList Combine(const NestedList& left, const NestedList& right,
                   const std::vector<bool>& owns_left) {
  NestedList out;
  out.tops.reserve(owns_left.size());
  for (size_t i = 0; i < owns_left.size(); ++i) {
    out.tops.push_back(owns_left[i] ? left.tops[i] : right.tops[i]);
  }
  return out;
}

}  // namespace nestedlist
}  // namespace blossomtree
