#ifndef BLOSSOMTREE_NESTEDLIST_OPS_H_
#define BLOSSOMTREE_NESTEDLIST_OPS_H_

#include <functional>
#include <vector>

#include "nestedlist/nested_list.h"
#include "util/status.h"

namespace blossomtree {
namespace nestedlist {

/// \brief The logical operators on NestedList (paper §3.3): projection,
/// selection, and the entry-level plumbing the physical joins build on.
/// All functions take the list's top-slot context (`tops`) because a
/// NestedList's shape depends on whether it is a NoK-local or global result.

/// \brief π_ID: unnests to the document-ordered list of nodes matched at
/// `target` (paper: π_{1.1}(t) = [b1, b2, b3]). Returns empty if `target`
/// is not reachable from `tops`.
std::vector<xml::NodeId> Project(const pattern::BlossomTree& tree,
                                 const std::vector<pattern::SlotId>& tops,
                                 const NestedList& list,
                                 pattern::SlotId target);

/// \brief Projection over a sequence of NestedLists (concatenation in
/// order, per §3.3).
std::vector<xml::NodeId> ProjectSequence(
    const pattern::BlossomTree& tree,
    const std::vector<pattern::SlotId>& tops,
    const std::vector<NestedList>& lists, pattern::SlotId target);

/// \brief Visits every entry matched at `target` (const).
void ForEachEntry(const pattern::BlossomTree& tree,
                  const std::vector<pattern::SlotId>& tops,
                  const NestedList& list, pattern::SlotId target,
                  const std::function<void(const Entry&)>& fn);

/// \brief Visits every entry matched at `target` (mutable; used by the
/// grafting joins to fill child groups in place).
void ForEachEntryMutable(const pattern::BlossomTree& tree,
                         const std::vector<pattern::SlotId>& tops,
                         NestedList* list, pattern::SlotId target,
                         const std::function<void(Entry*)>& fn);

/// \brief σ_φ(ID): removes entries at `target` for which `pred` returns
/// false (pred receives the node and its 1-based position in the projected
/// list), then restores validity: an entry whose mandatory (f-mode) child
/// group became empty is removed, cascading upward.
///
/// \return true if the list is still a valid match; false means the caller
/// must treat the result as the empty sequence (paper: "return empty
/// sequence").
bool Select(const pattern::BlossomTree& tree,
            const std::vector<pattern::SlotId>& tops, NestedList* list,
            pattern::SlotId target,
            const std::function<bool(xml::NodeId, size_t)>& pred);

/// \brief Positional selection σ_{position(ID)=k} (e.g. //book[2]).
bool SelectPosition(const pattern::BlossomTree& tree,
                    const std::vector<pattern::SlotId>& tops,
                    NestedList* list, pattern::SlotId target, size_t position);

/// \brief Removes entries at `target` whose mandatory child group at
/// `child_index` is empty, cascading mandatory-emptiness upward; returns
/// false if the whole list became invalid. Used by the structural joins
/// after grafting (f-mode connections).
bool EnforceMandatory(const pattern::BlossomTree& tree,
                      const std::vector<pattern::SlotId>& tops,
                      NestedList* list, pattern::SlotId target,
                      size_t child_index);

/// \brief ⋈: combines two NestedLists over the same top-slot context whose
/// filled slots are disjoint; `owns_left[i]` says which side provides top
/// group i (paper Example 4: the join "fills out the placeholders").
NestedList Combine(const NestedList& left, const NestedList& right,
                   const std::vector<bool>& owns_left);

/// \brief Returns the chain of slots from a member of `tops` down to
/// `target` (inclusive), or empty if unreachable.
std::vector<pattern::SlotId> SlotChain(
    const pattern::BlossomTree& tree,
    const std::vector<pattern::SlotId>& tops, pattern::SlotId target);

/// \brief Index of `child` within `parent`'s slot children.
size_t ChildIndex(const pattern::BlossomTree& tree, pattern::SlotId parent,
                  pattern::SlotId child);

}  // namespace nestedlist
}  // namespace blossomtree

#endif  // BLOSSOMTREE_NESTEDLIST_OPS_H_
