#ifndef BLOSSOMTREE_DATAGEN_DATAGEN_H_
#define BLOSSOMTREE_DATAGEN_DATAGEN_H_

#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"
#include "xml/document.h"

namespace blossomtree {
namespace datagen {

/// \brief The five data sets of the paper's Table 1.
///
/// The originals (XBench address/catalog, UW Treebank, dblp) are replaced by
/// grammar-based generators matching their published *shape* statistics —
/// see DESIGN.md §5 for the substitution rationale.
enum class Dataset {
  kD1Recursive,  ///< d1: synthetic, recursive DTD (8 tags, deep).
  kD2Address,    ///< d2: XBench address — shallow, 7 tags, depth 3.
  kD3Catalog,    ///< d3: XBench catalog — 51 tags, depth ≤ 8, non-recursive.
  kD4Treebank,   ///< d4: Treebank-like — deep recursive parse trees, 250 tags.
  kD5Dblp,       ///< d5: dblp-like — shallow bushy bibliography, 35 tags.
};

/// \brief Returns "d1".."d5".
const char* DatasetName(Dataset d);

/// \brief All five datasets in order.
std::vector<Dataset> AllDatasets();

/// \brief Generation parameters.
struct GenOptions {
  /// Linear size multiplier. scale=1 yields roughly 1/10 of the paper's node
  /// counts (e.g. ~120k nodes for d1); tests use much smaller scales.
  double scale = 1.0;
  /// RNG seed: (dataset, scale, seed) fully determines the document.
  uint64_t seed = 42;
};

/// \brief Generates one of the five datasets as an in-memory Document.
std::unique_ptr<xml::Document> GenerateDataset(Dataset d,
                                               const GenOptions& options = {});

/// \brief Row of Table 1 computed from a generated document.
struct DatasetStats {
  std::string name;
  bool recursive;
  size_t xml_bytes;     ///< Serialized size ("size" column).
  size_t num_nodes;     ///< Element count ("#nodes" column).
  double avg_depth;     ///< "avg. dep."
  uint32_t max_depth;   ///< "max dep."
  size_t num_tags;      ///< "|tags|"
  size_t tree_bytes;    ///< In-memory structure size ("|tree|").
};

/// \brief Computes the Table 1 row for a document.
DatasetStats ComputeStats(const xml::Document& doc, const std::string& name);

}  // namespace datagen
}  // namespace blossomtree

#endif  // BLOSSOMTREE_DATAGEN_DATAGEN_H_
