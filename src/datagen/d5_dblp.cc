#include "datagen/generators.h"

namespace blossomtree {
namespace datagen {
namespace internal {

namespace {

// d5 (Table 1): dblp-like — shallow, bushy bibliography: 35 tags, avg depth
// 3, max depth 6 (occasional markup nesting inside titles). The Appendix A
// queries probe phdthesis (rare → high selectivity), www (moderate) and
// proceedings (common among queried tags → low selectivity).
struct D5Generator {
  xml::Document* doc;
  Rng rng;

  void Field(const char* tag) {
    doc->BeginElement(tag);
    EmitWord(doc, &rng);
    doc->EndElement();
  }

  void Title() {
    doc->BeginElement("title");
    EmitWord(doc, &rng);
    if (rng.Chance(0.05)) {
      // Nested markup (sub/sup/i/tt) is what gives dblp max depth 6.
      doc->BeginElement("i");
      doc->BeginElement("sub");
      doc->BeginElement("sup");
      EmitWord(doc, &rng);
      doc->EndElement();
      doc->EndElement();
      doc->EndElement();
    }
    doc->EndElement();
  }

  void Authors(size_t max_n) {
    size_t n = 1 + rng.Uniform(max_n);
    for (size_t i = 0; i < n; ++i) Field("author");
  }

  void Article() {
    doc->BeginElement("article");
    Authors(3);
    Title();
    Field("journal");
    Field("year");
    if (rng.Chance(0.8)) Field("pages");
    if (rng.Chance(0.6)) Field("volume");
    if (rng.Chance(0.5)) Field("number");
    if (rng.Chance(0.5)) Field("ee");
    if (rng.Chance(0.3)) Field("url");
    if (rng.Chance(0.1)) Field("note");
    doc->EndElement();
  }

  void Inproceedings() {
    doc->BeginElement("inproceedings");
    Authors(4);
    Title();
    Field("booktitle");
    Field("year");
    if (rng.Chance(0.8)) Field("pages");
    if (rng.Chance(0.6)) Field("crossref");
    if (rng.Chance(0.4)) Field("ee");
    if (rng.Chance(0.3)) Field("url");
    doc->EndElement();
  }

  void Proceedings() {
    doc->BeginElement("proceedings");
    // ~70% carry editors; ~60% carry urls — the lc/lb query tier.
    if (rng.Chance(0.7)) {
      size_t n = 1 + rng.Uniform(3);
      for (size_t i = 0; i < n; ++i) Field("editor");
    }
    Title();
    Field("year");
    if (rng.Chance(0.8)) Field("publisher");
    if (rng.Chance(0.6)) Field("isbn");
    if (rng.Chance(0.6)) Field("url");
    if (rng.Chance(0.5)) Field("series");
    if (rng.Chance(0.4)) Field("volume");
    if (rng.Chance(0.2)) Field("address");
    doc->EndElement();
  }

  void Phdthesis() {
    doc->BeginElement("phdthesis");
    Field("author");
    Title();
    Field("year");
    if (rng.Chance(0.9)) Field("school");
    if (rng.Chance(0.3)) Field("isbn");
    if (rng.Chance(0.2)) Field("month");
    doc->EndElement();
  }

  void Masterthesis() {
    doc->BeginElement("mastersthesis");
    Field("author");
    Title();
    Field("year");
    Field("school");
    doc->EndElement();
  }

  void Www() {
    doc->BeginElement("www");
    if (rng.Chance(0.7)) Authors(2);
    if (rng.Chance(0.8)) Title();
    if (rng.Chance(0.75)) Field("url");
    if (rng.Chance(0.3)) Field("year");
    if (rng.Chance(0.2)) Field("editor");
    if (rng.Chance(0.2)) Field("note");
    if (rng.Chance(0.1)) Field("cite");
    doc->EndElement();
  }

  void Incollection() {
    doc->BeginElement("incollection");
    Authors(3);
    Title();
    Field("booktitle");
    Field("year");
    if (rng.Chance(0.5)) Field("pages");
    if (rng.Chance(0.3)) Field("chapter");
    if (rng.Chance(0.3)) Field("publisher");
    doc->EndElement();
  }

  void Book() {
    doc->BeginElement("book");
    Authors(2);
    Title();
    Field("publisher");
    Field("year");
    if (rng.Chance(0.5)) Field("isbn");
    if (rng.Chance(0.3)) Field("series");
    doc->EndElement();
  }

  void Entry() {
    double r = rng.NextDouble();
    if (r < 0.30) {
      Article();
    } else if (r < 0.58) {
      Inproceedings();
    } else if (r < 0.72) {
      Proceedings();
    } else if (r < 0.85) {
      Www();
    } else if (r < 0.90) {
      Phdthesis();
    } else if (r < 0.93) {
      Masterthesis();
    } else if (r < 0.97) {
      Incollection();
    } else {
      Book();
    }
  }
};

}  // namespace

std::unique_ptr<xml::Document> GenerateD5Dblp(const GenOptions& options) {
  auto doc = std::make_unique<xml::Document>();
  D5Generator gen{doc.get(), Rng(options.seed ^ 0xD5D5D5D5ULL)};
  // Each entry contributes ~8 elements; d5 has ~3.3M nodes at full size,
  // so scale=1 yields ~330k → ~41k entries.
  size_t num_entries = static_cast<size_t>(41000 * options.scale);
  if (num_entries == 0) num_entries = 8;
  doc->BeginElement("dblp");
  for (size_t i = 0; i < num_entries; ++i) gen.Entry();
  doc->EndElement();
  Status st = doc->Finish();
  (void)st;
  return doc;
}

}  // namespace internal
}  // namespace datagen
}  // namespace blossomtree
