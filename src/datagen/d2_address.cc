#include "datagen/generators.h"

namespace blossomtree {
namespace datagen {
namespace internal {

namespace {

// d2 (Table 1): XBench "address" — shallow non-recursive data with 7 tags
// and max depth 3: addresses / address / {five field tags}. The Appendix A
// queries probe street_address (always present), zip_code / country_id
// (sometimes absent, giving the h/m selectivity tiers) and name_of_state /
// name_of_city.
const char* kStates[] = {"Ontario", "Quebec",  "Bavaria", "Texas",
                         "Kerala",  "Hokkaido"};
const char* kCities[] = {"Waterloo", "Toronto", "Munich",
                         "Austin",   "Kochi",   "Sapporo"};
const char* kCountries[] = {"CA", "DE", "US", "IN", "JP"};

}  // namespace

std::unique_ptr<xml::Document> GenerateD2Address(const GenOptions& options) {
  auto doc = std::make_unique<xml::Document>();
  Rng rng(options.seed ^ 0xD2D2D2D2ULL);
  // Each address contributes ~5 elements; Table 1's d2 has ~400k nodes at
  // full size, so scale=1 yields ~40k.
  size_t num_addresses = static_cast<size_t>(8000 * options.scale);
  if (num_addresses == 0) num_addresses = 4;

  doc->BeginElement("addresses");
  for (size_t i = 0; i < num_addresses; ++i) {
    doc->BeginElement("address");
    doc->BeginElement("street_address");
    doc->AddText(std::to_string(1 + rng.Uniform(9999)) + " Main St");
    doc->EndElement();
    doc->BeginElement("name_of_city");
    doc->AddText(kCities[rng.Uniform(6)]);
    doc->EndElement();
    // Optional-field probabilities define the Table 2 selectivity tiers:
    // name_of_state 8% (high), country_id 35% (moderate), zip_code 75%
    // (low).
    if (rng.Chance(0.08)) {
      doc->BeginElement("name_of_state");
      doc->AddText(kStates[rng.Uniform(6)]);
      doc->EndElement();
    }
    if (rng.Chance(0.75)) {
      doc->BeginElement("zip_code");
      doc->AddText(std::to_string(10000 + rng.Uniform(89999)));
      doc->EndElement();
    }
    if (rng.Chance(0.35)) {
      doc->BeginElement("country_id");
      doc->AddText(kCountries[rng.Uniform(5)]);
      doc->EndElement();
    }
    doc->EndElement();
  }
  doc->EndElement();
  Status st = doc->Finish();
  (void)st;
  return doc;
}

}  // namespace internal
}  // namespace datagen
}  // namespace blossomtree
