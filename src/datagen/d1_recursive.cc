#include "datagen/generators.h"

namespace blossomtree {
namespace datagen {
namespace internal {

namespace {

// d1 (Table 1): synthetic recursive DTD — 8 tags, ~1.2M nodes at full size,
// avg depth 7, max depth 8. The Appendix A queries for d1 use tags
// a, b1..b4, c1..c3 with heavy same-tag nesting (e.g. //b1//c2//b1), so the
// grammar lets every tag appear under every other, capped at depth 8.
constexpr const char* kTags[] = {"a", "b1", "b2", "b3", "b4",
                                 "c1", "c2", "c3"};
constexpr size_t kNumTags = 8;
constexpr uint32_t kMaxDepth = 8;

struct D1Generator {
  xml::Document* doc;
  Rng rng;
  size_t budget;  // Remaining element quota.

  // Fanout 3 at inner levels concentrates mass near the depth cap, which is
  // what produces Table 1's avg depth 7 with max depth 8.
  void Emit(uint32_t depth) {
    if (budget == 0) return;
    --budget;
    // Tag choice: the a tag stays rare below the root; b/c tags are skewed
    // so that query selectivities spread (b1,c2 common; b4,c3 rare).
    size_t tag;
    double r = rng.NextDouble();
    if (r < 0.04) {
      tag = 0;  // a
    } else if (r < 0.30) {
      tag = 1;  // b1
    } else if (r < 0.45) {
      tag = 2;  // b2
    } else if (r < 0.58) {
      tag = 3;  // b3
    } else if (r < 0.63) {
      tag = 4;  // b4
    } else if (r < 0.75) {
      tag = 5;  // c1
    } else if (r < 0.95) {
      tag = 6;  // c2
    } else {
      tag = 7;  // c3
    }
    doc->BeginElement(kTags[tag]);
    if (depth < kMaxDepth) {
      size_t fanout = 2 + rng.Uniform(3);  // 2..4
      for (size_t i = 0; i < fanout && budget > 0; ++i) {
        Emit(depth + 1);
      }
    } else if (rng.Chance(0.3)) {
      EmitWord(doc, &rng);
    }
    doc->EndElement();
  }
};

}  // namespace

std::unique_ptr<xml::Document> GenerateD1Recursive(const GenOptions& options) {
  auto doc = std::make_unique<xml::Document>();
  D1Generator gen{doc.get(), Rng(options.seed ^ 0xD1D1D1D1ULL),
                  static_cast<size_t>(120000 * options.scale)};
  if (gen.budget == 0) gen.budget = 16;
  --gen.budget;
  doc->BeginElement("a");
  while (gen.budget > 0) {
    gen.Emit(2);
  }
  doc->EndElement();
  Status st = doc->Finish();
  (void)st;
  return doc;
}

}  // namespace internal
}  // namespace datagen
}  // namespace blossomtree
