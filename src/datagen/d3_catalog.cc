#include "datagen/generators.h"

namespace blossomtree {
namespace datagen {
namespace internal {

namespace {

// d3 (Table 1): XBench "catalog" — 51 tags, avg depth 5, max depth 8,
// non-recursive. The schema below follows the XBench catalog DTD closely
// enough for the Appendix A queries (items with nested author / publisher
// contact structures ending in street_address).
struct D3Generator {
  xml::Document* doc;
  Rng rng;

  void MailingAddress() {
    doc->BeginElement("mailing_address");
    doc->BeginElement("street_information");
    doc->BeginElement("street_address");
    doc->AddText(std::to_string(1 + rng.Uniform(999)) + " King St");
    doc->EndElement();
    if (rng.Chance(0.3)) {
      doc->BeginElement("street_address2");
      doc->AddText("Suite " + std::to_string(1 + rng.Uniform(99)));
      doc->EndElement();
    }
    doc->EndElement();  // street_information
    Leaf("name_of_city");
    if (rng.Chance(0.7)) Leaf("name_of_state");
    Leaf("zip_code");
    Leaf("name_of_country");
    doc->EndElement();
  }

  void ContactInformation() {
    doc->BeginElement("contact_information");
    MailingAddress();
    if (rng.Chance(0.6)) Leaf("phone_number");
    if (rng.Chance(0.5)) Leaf("email_address");
    if (rng.Chance(0.2)) Leaf("web_site");
    doc->EndElement();
  }

  void Author() {
    doc->BeginElement("author");
    doc->BeginElement("name");
    Leaf("first_name");
    if (rng.Chance(0.3)) Leaf("middle_name");
    Leaf("last_name");
    doc->EndElement();
    if (rng.Chance(0.5)) Leaf("date_of_birth");
    if (rng.Chance(0.4)) Leaf("biography");
    // Only some authors carry a full contact block (drives the l-selectivity
    // tier of Q5/Q6).
    if (rng.Chance(0.55)) ContactInformation();
    doc->EndElement();
  }

  void Publisher() {
    doc->BeginElement("publisher");
    Leaf("publisher_name");
    if (rng.Chance(0.65)) ContactInformation();
    doc->EndElement();
  }

  void Item() {
    doc->BeginElement("item");
    doc->BeginElement("title");
    EmitWord(doc, &rng);
    doc->EndElement();
    doc->BeginElement("authors");
    size_t n_auth = 1 + rng.Uniform(3);
    for (size_t i = 0; i < n_auth; ++i) Author();
    doc->EndElement();
    // ~40% of items carry a publisher (moderate selectivity tier).
    if (rng.Chance(0.40)) Publisher();
    doc->BeginElement("attributes");
    if (rng.Chance(0.15)) {
      // Rare size_of_book block — target of the hc query Q1.
      doc->BeginElement("size_of_book");
      Leaf("length");
      Leaf("width");
      Leaf("height");
      doc->EndElement();
    }
    Leaf("number_of_pages");
    if (rng.Chance(0.5)) Leaf("cover_type");
    if (rng.Chance(0.5)) Leaf("media_type");
    doc->EndElement();  // attributes
    doc->BeginElement("publication");
    Leaf("date_of_release");
    if (rng.Chance(0.4)) Leaf("edition");
    doc->EndElement();
    Leaf("ISBN");
    if (rng.Chance(0.3)) {
      doc->BeginElement("pricing");
      Leaf("suggested_retail_price");
      if (rng.Chance(0.5)) Leaf("cost");
      doc->EndElement();
    }
    if (rng.Chance(0.25)) {
      doc->BeginElement("related_items");
      doc->BeginElement("related_item");
      Leaf("item_id");
      doc->EndElement();
      doc->EndElement();
    }
    if (rng.Chance(0.2)) {
      doc->BeginElement("subject_information");
      Leaf("subject");
      if (rng.Chance(0.5)) Leaf("sub_subject");
      doc->EndElement();
    }
    if (rng.Chance(0.15)) {
      doc->BeginElement("reviews");
      doc->BeginElement("review");
      Leaf("rating");
      Leaf("comments");
      doc->EndElement();
      doc->EndElement();
    }
    if (rng.Chance(0.1)) {
      doc->BeginElement("availability");
      Leaf("in_stock");
      if (rng.Chance(0.5)) Leaf("ship_within");
      doc->EndElement();
    }
    doc->EndElement();  // item
  }

  void Leaf(const char* tag) {
    doc->BeginElement(tag);
    EmitWord(doc, &rng);
    doc->EndElement();
  }
};

}  // namespace

std::unique_ptr<xml::Document> GenerateD3Catalog(const GenOptions& options) {
  auto doc = std::make_unique<xml::Document>();
  D3Generator gen{doc.get(), Rng(options.seed ^ 0xD3D3D3D3ULL)};
  // Each item contributes ~35 elements; d3 has ~620k nodes at full size,
  // so scale=1 yields ~62k.
  size_t num_items = static_cast<size_t>(1800 * options.scale);
  if (num_items == 0) num_items = 4;
  doc->BeginElement("catalog");
  for (size_t i = 0; i < num_items; ++i) gen.Item();
  doc->EndElement();
  Status st = doc->Finish();
  (void)st;
  return doc;
}

}  // namespace internal
}  // namespace datagen
}  // namespace blossomtree
