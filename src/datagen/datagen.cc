#include "datagen/datagen.h"

#include "datagen/generators.h"
#include "xml/serializer.h"

namespace blossomtree {
namespace datagen {

const char* DatasetName(Dataset d) {
  switch (d) {
    case Dataset::kD1Recursive:
      return "d1";
    case Dataset::kD2Address:
      return "d2";
    case Dataset::kD3Catalog:
      return "d3";
    case Dataset::kD4Treebank:
      return "d4";
    case Dataset::kD5Dblp:
      return "d5";
  }
  return "?";
}

std::vector<Dataset> AllDatasets() {
  return {Dataset::kD1Recursive, Dataset::kD2Address, Dataset::kD3Catalog,
          Dataset::kD4Treebank, Dataset::kD5Dblp};
}

std::unique_ptr<xml::Document> GenerateDataset(Dataset d,
                                               const GenOptions& options) {
  switch (d) {
    case Dataset::kD1Recursive:
      return internal::GenerateD1Recursive(options);
    case Dataset::kD2Address:
      return internal::GenerateD2Address(options);
    case Dataset::kD3Catalog:
      return internal::GenerateD3Catalog(options);
    case Dataset::kD4Treebank:
      return internal::GenerateD4Treebank(options);
    case Dataset::kD5Dblp:
      return internal::GenerateD5Dblp(options);
  }
  return nullptr;
}

DatasetStats ComputeStats(const xml::Document& doc, const std::string& name) {
  DatasetStats s;
  s.name = name;
  s.recursive = doc.IsRecursive();
  s.xml_bytes = xml::Serialize(doc).size();
  s.num_nodes = doc.NumElements();
  s.avg_depth = doc.AvgDepth();
  s.max_depth = doc.MaxDepth();
  s.num_tags = doc.tags().size();
  s.tree_bytes = doc.StructureBytes();
  return s;
}

namespace internal {

void EmitWord(xml::Document* doc, Rng* rng) {
  static const char* kWords[] = {
      "alpha", "beta",  "gamma", "delta", "omega", "sigma",
      "query", "tree",  "node",  "path",  "data",  "join",
      "match", "index", "scan",  "plan",  "cost",  "leaf",
  };
  constexpr size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);
  std::string text = kWords[rng->Uniform(kNumWords)];
  if (rng->Chance(0.5)) {
    text += ' ';
    text += kWords[rng->Uniform(kNumWords)];
  }
  doc->AddText(text);
}

}  // namespace internal
}  // namespace datagen
}  // namespace blossomtree
