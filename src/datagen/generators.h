#ifndef BLOSSOMTREE_DATAGEN_GENERATORS_H_
#define BLOSSOMTREE_DATAGEN_GENERATORS_H_

#include <memory>

#include "datagen/datagen.h"

namespace blossomtree {
namespace datagen {
namespace internal {

// Per-dataset generator entry points (see datagen.h for the public API).
std::unique_ptr<xml::Document> GenerateD1Recursive(const GenOptions& options);
std::unique_ptr<xml::Document> GenerateD2Address(const GenOptions& options);
std::unique_ptr<xml::Document> GenerateD3Catalog(const GenOptions& options);
std::unique_ptr<xml::Document> GenerateD4Treebank(const GenOptions& options);
std::unique_ptr<xml::Document> GenerateD5Dblp(const GenOptions& options);

/// \brief Emits a short pseudo-word text node (deterministic from rng).
void EmitWord(xml::Document* doc, Rng* rng);

}  // namespace internal
}  // namespace datagen
}  // namespace blossomtree

#endif  // BLOSSOMTREE_DATAGEN_GENERATORS_H_
