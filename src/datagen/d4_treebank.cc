#include "datagen/generators.h"

namespace blossomtree {
namespace datagen {
namespace internal {

namespace {

// d4 (Table 1): Treebank-like — real parse trees are deep (max depth 36) and
// highly recursive, with a large tag vocabulary (250). The grammar below
// mimics Penn-Treebank phrase structure: clause/phrase tags recurse
// (S, VP, NP, PP, SBAR, ADJP, ADVP), part-of-speech tags terminate, and a
// tail of rare function tags pads the vocabulary to 250 as in the original.
constexpr const char* kPhrase[] = {"S", "VP", "NP", "PP", "SBAR", "ADJP",
                                   "ADVP"};
constexpr size_t kNumPhrase = 7;
constexpr const char* kPos[] = {"NN",  "NNS", "VB",  "VBD", "IN", "JJ",
                                "DT",  "PRP", "RB",  "CC",  "CD", "TO",
                                "MD",  "POS", "WDT", "EX",  "UH", "FW"};
constexpr size_t kNumPos = 18;
constexpr uint32_t kMaxDepth = 36;

struct D4Generator {
  xml::Document* doc;
  Rng rng;
  size_t budget;
  size_t rare_counter = 0;

  size_t PickPhraseTag() {
    // Phrase choice biased to VP/NP nesting, which the Appendix A d4 queries
    // exercise (//VP//VP/NP//PP/PP etc.).
    double r = rng.NextDouble();
    if (r < 0.30) return 1;               // VP
    if (r < 0.60) return 2;               // NP
    if (r < 0.78) return 3;               // PP
    if (r < 0.84) return 0;               // S
    return 4 + rng.Uniform(3);            // SBAR/ADJP/ADVP
  }

  /// One sentence: a phrase "spine" descending to a per-sentence target
  /// depth (mostly shallow, occasionally the full 36 levels, as in real
  /// treebank trees), with POS-leaf and small-phrase side branches.
  void Sentence() {
    double r = rng.NextDouble();
    uint32_t target = 4 + static_cast<uint32_t>(r * r * (kMaxDepth - 4));
    Spine(2, target);
  }

  void Spine(uint32_t depth, uint32_t target) {
    if (budget == 0) return;
    --budget;
    doc->BeginElement(kPhrase[PickPhraseTag()]);
    if (rng.Chance(0.4)) PosLeaf();
    if (depth < target) Spine(depth + 1, target);
    if (rng.Chance(0.5)) PosLeaf();
    if (rng.Chance(0.15) && depth + 2 < kMaxDepth && budget > 2) {
      // Short side phrase with a leaf.
      --budget;
      doc->BeginElement(kPhrase[PickPhraseTag()]);
      PosLeaf();
      doc->EndElement();
    }
    doc->EndElement();
  }

  void PosLeaf() {
    if (budget == 0) return;
    --budget;
    doc->BeginElement(kPos[rng.Uniform(kNumPos)]);
    EmitWord(doc, &rng);
    doc->EndElement();
  }

  // Rare function tags (SEC-0 .. SEC-224) pad |tags| to 250 like the
  // original's long tail of markers.
  void RareLeaf() {
    --budget;
    doc->BeginElement("SEC-" + std::to_string(rare_counter++ % 225));
    doc->EndElement();
  }
};

}  // namespace

std::unique_ptr<xml::Document> GenerateD4Treebank(const GenOptions& options) {
  auto doc = std::make_unique<xml::Document>();
  D4Generator gen{doc.get(), Rng(options.seed ^ 0xD4D4D4D4ULL),
                  static_cast<size_t>(240000 * options.scale)};
  if (gen.budget < 16) gen.budget = 16;
  --gen.budget;
  doc->BeginElement("treebank");
  size_t sentence = 0;
  while (gen.budget > 0) {
    // One rare tag roughly every 25 sentences keeps the tail sparse while
    // still exhausting all 225 labels at full scale.
    if (sentence % 25 == 13 && gen.budget > 1) gen.RareLeaf();
    gen.Sentence();
    ++sentence;
  }
  doc->EndElement();
  Status st = doc->Finish();
  (void)st;
  return doc;
}

}  // namespace internal
}  // namespace datagen
}  // namespace blossomtree
