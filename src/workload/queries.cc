#include "workload/queries.h"

namespace blossomtree {
namespace workload {

std::vector<QuerySpec> QueriesFor(datagen::Dataset dataset) {
  switch (dataset) {
    case datagen::Dataset::kD1Recursive:
      // Verbatim from Appendix A (the d1 vocabulary is the paper's).
      return {
          {"Q1", "hc", "//a//b4//c3"},
          {"Q2", "hb", "//a[//b4][//b2]//c3"},
          {"Q3", "mc", "//a//b3//c2"},
          {"Q4", "mb", "//a[//b2]//b3//c1"},
          {"Q5", "lc", "//a//b1"},
          {"Q6", "lb", "//a[//c2]//b1"},
      };
    case datagen::Dataset::kD2Address:
      // Appendix A uses the XBench address vocabulary; the optional-field
      // probabilities of the generator reproduce the selectivity tiers.
      return {
          {"Q1", "hc", "//address//name_of_state"},
          {"Q2", "hb", "//address[//name_of_state]//zip_code"},
          {"Q3", "mc", "//address//country_id"},
          {"Q4", "mb", "//address[//country_id][//name_of_city]//zip_code"},
          {"Q5", "lc", "//address//zip_code"},
          {"Q6", "lb",
           "//address[//street_address][//name_of_city]//zip_code"},
      };
    case datagen::Dataset::kD3Catalog:
      return {
          {"Q1", "hc", "//item/attributes//length"},
          {"Q2", "hb",
           "//item[//author/contact_information//street_address]/title"},
          {"Q3", "mc", "//publisher//street_information//street_address"},
          {"Q4", "mb", "//publisher[//mailing_address]//street_address"},
          {"Q5", "lc", "//author//mailing_address//street_address"},
          {"Q6", "lb",
           "//author[//date_of_birth][//last_name]//street_address"},
      };
    case datagen::Dataset::kD4Treebank:
      return {
          {"Q1", "hc", "//VP//VP/NP//PP/PP"},
          {"Q2", "hb", "//VP[//VP]//NP[//PP]//NN"},
          {"Q3", "mc", "//VP/VP/NP//NN"},
          {"Q4", "mb", "//VP[//PP]//VP/NP//NN"},
          {"Q5", "lc", "//VP//NP//NN"},
          {"Q6", "lb", "//VP[//NP][//VB]//JJ"},
      };
    case datagen::Dataset::kD5Dblp:
      return {
          {"Q1", "hc", "//phdthesis//author"},
          {"Q2", "hb", "//phdthesis[//author][//school]"},
          {"Q3", "mc", "//www[//url]"},
          {"Q4", "mb", "//www[//title][//url]//author"},
          {"Q5", "lc", "//proceedings[//editor]"},
          {"Q6", "lb", "//proceedings[//editor][//year][//url]"},
      };
  }
  return {};
}

}  // namespace workload
}  // namespace blossomtree
