#ifndef BLOSSOMTREE_WORKLOAD_QUERIES_H_
#define BLOSSOMTREE_WORKLOAD_QUERIES_H_

#include <string>
#include <vector>

#include "datagen/datagen.h"

namespace blossomtree {
namespace workload {

/// \brief One Table 2 workload entry: a query id (Q1..Q6), its
/// selectivity/topology category (hc, hb, mc, mb, lc, lb — paper §5.1),
/// and the concrete XPath for one dataset.
struct QuerySpec {
  std::string id;        ///< "Q1".."Q6".
  std::string category;  ///< "hc","hb","mc","mb","lc","lb".
  std::string xpath;
};

/// \brief The six Appendix A queries for a dataset, ported to this
/// repository's generated tag vocabularies (see EXPERIMENTS.md for the
/// mapping rationale; selectivity tiers and chain/branch topology follow
/// the paper's design).
std::vector<QuerySpec> QueriesFor(datagen::Dataset dataset);

}  // namespace workload
}  // namespace blossomtree

#endif  // BLOSSOMTREE_WORKLOAD_QUERIES_H_
