#include "exec/kernels.h"

#include <cstdlib>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#define BLOSSOMTREE_KERNELS_SSE2 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#define BLOSSOMTREE_KERNELS_NEON 1
#endif

namespace blossomtree {
namespace exec {

KernelBackend CompiledKernelBackend() {
#if defined(BLOSSOMTREE_KERNELS_SSE2)
  return KernelBackend::kSse2;
#elif defined(BLOSSOMTREE_KERNELS_NEON)
  return KernelBackend::kNeon;
#else
  return KernelBackend::kScalar;
#endif
}

const char* KernelBackendName(KernelBackend b) {
  switch (b) {
    case KernelBackend::kSse2:
      return "sse2";
    case KernelBackend::kNeon:
      return "neon";
    case KernelBackend::kScalar:
      return "scalar";
  }
  return "scalar";
}

bool ForceScalarKernels() {
  static const bool forced = [] {
    const char* v = std::getenv("BLOSSOMTREE_FORCE_SCALAR_KERNELS");
    return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
  }();
  return forced;
}

KernelBackend EffectiveKernelBackend(bool allow_simd) {
  if (!allow_simd || ForceScalarKernels()) return KernelBackend::kScalar;
  return CompiledKernelBackend();
}

namespace {

void FilterTagEqScalar(const xml::TagId* tags, size_t n, xml::TagId target,
                       xml::NodeId base, std::vector<xml::NodeId>* out) {
  for (size_t i = 0; i < n; ++i) {
    if (tags[i] == target) out->push_back(base + static_cast<xml::NodeId>(i));
  }
}

void FilterTagEqRecordsScalar(const xml::PackedNodeRecord* records, size_t n,
                              xml::TagId target, xml::NodeId base,
                              std::vector<xml::NodeId>* out) {
  for (size_t i = 0; i < n; ++i) {
    // memcpy load: the record stream may sit in an unaligned heap/pread
    // buffer (DESIGN.md §16); never dereference a possibly-misaligned
    // uint32_t directly.
    xml::TagId tag;
    std::memcpy(&tag, reinterpret_cast<const char*>(records) +
                          i * sizeof(xml::PackedNodeRecord),
                sizeof tag);
    if (tag == target) out->push_back(base + static_cast<xml::NodeId>(i));
  }
}

#if defined(BLOSSOMTREE_KERNELS_SSE2)

void FilterTagEqSse2(const xml::TagId* tags, size_t n, xml::TagId target,
                     xml::NodeId base, std::vector<xml::NodeId>* out) {
  const __m128i want = _mm_set1_epi32(static_cast<int>(target));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags + i));
    int mask = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, want)));
    while (mask != 0) {
      int bit = __builtin_ctz(static_cast<unsigned>(mask));
      out->push_back(base + static_cast<xml::NodeId>(i + bit));
      mask &= mask - 1;
    }
  }
  FilterTagEqScalar(tags + i, n - i, target,
                    base + static_cast<xml::NodeId>(i), out);
}

void FilterTagEqRecordsSse2(const xml::PackedNodeRecord* records, size_t n,
                            xml::TagId target, xml::NodeId base,
                            std::vector<xml::NodeId>* out) {
  const __m128i want = _mm_set1_epi32(static_cast<int>(target));
  const char* p = reinterpret_cast<const char*>(records);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Four unaligned 16-byte record loads; unpack gathers the four lane-0
    // tag ids into one vector: [t0 t1 | e0 e1] ∪ [t2 t3 | e2 e3] → tags.
    __m128i r0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    __m128i r1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
    __m128i r2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
    __m128i r3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48));
    __m128i lo01 = _mm_unpacklo_epi32(r0, r1);
    __m128i lo23 = _mm_unpacklo_epi32(r2, r3);
    __m128i tags = _mm_unpacklo_epi64(lo01, lo23);
    int mask = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(tags, want)));
    while (mask != 0) {
      int bit = __builtin_ctz(static_cast<unsigned>(mask));
      out->push_back(base + static_cast<xml::NodeId>(i + bit));
      mask &= mask - 1;
    }
    p += 4 * sizeof(xml::PackedNodeRecord);
  }
  FilterTagEqRecordsScalar(records + i, n - i, target,
                           base + static_cast<xml::NodeId>(i), out);
}

#elif defined(BLOSSOMTREE_KERNELS_NEON)

void FilterTagEqNeon(const xml::TagId* tags, size_t n, xml::TagId target,
                     xml::NodeId base, std::vector<xml::NodeId>* out) {
  const uint32x4_t want = vdupq_n_u32(target);
  size_t i = 0;
  uint32_t lanes[4];
  for (; i + 4 <= n; i += 4) {
    uint32x4_t eq = vceqq_u32(vld1q_u32(tags + i), want);
    vst1q_u32(lanes, eq);
    for (int bit = 0; bit < 4; ++bit) {
      if (lanes[bit] != 0) {
        out->push_back(base + static_cast<xml::NodeId>(i + bit));
      }
    }
  }
  FilterTagEqScalar(tags + i, n - i, target,
                    base + static_cast<xml::NodeId>(i), out);
}

void FilterTagEqRecordsNeon(const xml::PackedNodeRecord* records, size_t n,
                            xml::TagId target, xml::NodeId base,
                            std::vector<xml::NodeId>* out) {
  const uint32x4_t want = vdupq_n_u32(target);
  const uint32_t* p = reinterpret_cast<const uint32_t*>(records);
  size_t i = 0;
  uint32_t lanes[4];
  for (; i + 4 <= n; i += 4) {
    // vld4q deinterleaves four 16-byte records; .val[0] is the tag lane.
    uint32x4x4_t r = vld4q_u32(p + i * 4);
    uint32x4_t eq = vceqq_u32(r.val[0], want);
    vst1q_u32(lanes, eq);
    for (int bit = 0; bit < 4; ++bit) {
      if (lanes[bit] != 0) {
        out->push_back(base + static_cast<xml::NodeId>(i + bit));
      }
    }
  }
  FilterTagEqRecordsScalar(records + i, n - i, target,
                           base + static_cast<xml::NodeId>(i), out);
}

#endif

}  // namespace

void FilterTagEq(const xml::TagId* tags, size_t n, xml::TagId target,
                 xml::NodeId base, bool allow_simd,
                 std::vector<xml::NodeId>* out) {
  switch (EffectiveKernelBackend(allow_simd)) {
#if defined(BLOSSOMTREE_KERNELS_SSE2)
    case KernelBackend::kSse2:
      FilterTagEqSse2(tags, n, target, base, out);
      return;
#elif defined(BLOSSOMTREE_KERNELS_NEON)
    case KernelBackend::kNeon:
      FilterTagEqNeon(tags, n, target, base, out);
      return;
#endif
    default:
      FilterTagEqScalar(tags, n, target, base, out);
      return;
  }
}

void FilterTagEqRecords(const xml::PackedNodeRecord* records, size_t n,
                        xml::TagId target, xml::NodeId base, bool allow_simd,
                        std::vector<xml::NodeId>* out) {
  switch (EffectiveKernelBackend(allow_simd)) {
#if defined(BLOSSOMTREE_KERNELS_SSE2)
    case KernelBackend::kSse2:
      FilterTagEqRecordsSse2(records, n, target, base, out);
      return;
#elif defined(BLOSSOMTREE_KERNELS_NEON)
    case KernelBackend::kNeon:
      FilterTagEqRecordsNeon(records, n, target, base, out);
      return;
#endif
    default:
      FilterTagEqRecordsScalar(records, n, target, base, out);
      return;
  }
}

size_t CountLessEq(const xml::NodeId* sorted, size_t n, xml::NodeId key) {
  // Branch-free upper bound: each step halves [lo, lo+len) with a
  // conditional move instead of a data-dependent branch, so the merge
  // loops never mispredict on the containment test.
  size_t lo = 0;
  size_t len = n;
  while (len > 0) {
    size_t half = len >> 1;
    bool le = sorted[lo + half] <= key;
    lo = le ? lo + half + 1 : lo;
    len = le ? len - half - 1 : half;
  }
  return lo;
}

}  // namespace exec
}  // namespace blossomtree
