#ifndef BLOSSOMTREE_EXEC_NOK_SCAN_H_
#define BLOSSOMTREE_EXEC_NOK_SCAN_H_

#include <cstdint>
#include <vector>

#include <string>

#include "exec/batch.h"
#include "exec/operator.h"
#include "exec/result_cache.h"
#include "nestedlist/nested_list.h"
#include "pattern/decompose.h"
#include "storage/node_store.h"
#include "storage/page_store.h"
#include "util/resource_guard.h"
#include "util/thread_pool.h"
#include "xml/document.h"

namespace blossomtree {
namespace exec {

/// \brief Sentinel NodeId for the virtual document root "~" (the node above
/// the root element that anchors absolute paths).
constexpr xml::NodeId kVirtualRootNode = static_cast<xml::NodeId>(-2);

/// \brief NoK pattern-tree matcher (paper Algorithm 2): matches one NoK
/// pattern tree (local axes only) against the subtree rooted at a given
/// XML node, building the NestedList groups for every returning node in
/// one depth-first pass.
class NokMatcher {
 public:
  NokMatcher(const xml::Document* doc, const pattern::BlossomTree* tree,
             const pattern::NokTree* nok);

  /// \brief The NoK's local top slots: the slots its output NestedLists'
  /// `tops` are aligned with.
  const std::vector<pattern::SlotId>& top_slots() const { return top_slots_; }

  /// \brief Attempts to match the NoK rooted at `x` (kVirtualRootNode for a
  /// "~"-rooted NoK). On success fills `out` and returns true.
  bool MatchAt(xml::NodeId x, nestedlist::NestedList* out);

  /// \brief True if `x` can possibly match the NoK root (tag + value test);
  /// the scan driver uses this as a cheap prefilter.
  bool RootTest(xml::NodeId x) const;

  /// \brief Pattern-vertex/node constraint checks performed so far (a
  /// work metric for the ablation benches).
  uint64_t MatchWork() const { return match_work_; }

  /// \brief Attaches a resource guard: MatchVertex samples it every ~1k
  /// work units (DESIGN.md §9) so a deadline fires even inside one deep
  /// recursive match. After a trip MatchAt returns false; its partial
  /// output is garbage and callers must consult guard->status().
  void set_guard(util::ResourceGuard* guard) { guard_ = guard; }

 private:
  struct LocalVertex {
    pattern::VertexId vertex;
    std::vector<uint32_t> local_children;  ///< Indices into locals_.
    /// Slots this vertex contributes upward: [slot(v)] if returning, else
    /// the concatenation over local children.
    std::vector<pattern::SlotId> next_slots;
    /// For returning vertices: for each local child's next slot, its index
    /// within slot(v).children (global child-slot layout).
    std::vector<size_t> child_slot_index;
  };

  bool ConstraintsOk(const pattern::Vertex& v, xml::NodeId x) const;
  bool TagOk(const pattern::Vertex& v, xml::NodeId x) const;
  bool MatchVertex(uint32_t local_index, xml::NodeId x,
                   std::vector<nestedlist::Group>* out_groups);

  const xml::Document* doc_;
  const pattern::BlossomTree* tree_;
  const pattern::NokTree* nok_;
  std::vector<LocalVertex> locals_;  ///< locals_[0] is the NoK root.
  std::vector<pattern::SlotId> top_slots_;
  uint64_t match_work_ = 0;
  util::ResourceGuard* guard_ = nullptr;
};

/// \brief Sequential-scan driver (paper §3.3's "sequential scan of the XML
/// tree against the blossom tree"): tries the NoK at every node in document
/// order and emits one NestedList per match, as a Volcano-style iterator.
///
/// With a thread pool the full-document scan runs in *parallel mode*: the
/// document is split at top-level subtree boundaries
/// (storage::PartitionSubtrees), one private NokMatcher matches each
/// partition's node range, and the per-partition match lists are
/// concatenated in partition order. Partition ranges ascend in NodeId (=
/// Dewey/document order), and every match is local to its partition, so the
/// concatenation is bitwise-identical to the serial scan's output stream
/// (Theorem 1; DESIGN.md §7). Range-restricted scans (the BNLJ inner side)
/// always use the serial path.
class NokScanOperator : public NestedListOperator {
 public:
  /// \param pool optional worker pool; nullptr (or a restricted range)
  ///        selects the exact serial scan.
  /// \param guard optional per-query resource guard, sampled at batch
  ///        boundaries (every ~512 nodes, per partition in parallel mode)
  ///        and charged for every emitted NestedList cell; once tripped the
  ///        stream ends early and the caller must check guard->status().
  /// \param cache optional NoK sub-result cache (DESIGN.md §11): full-range
  ///        scans probe it by (document generation, canonical NoK, range)
  ///        and replay a hit's materialized matches without scanning;
  ///        complete cold scans fill it. Range-restricted scans (the BNLJ
  ///        inner side) bypass it. nullptr = the exact uncached scan.
  /// \param store optional paged node store backing `doc` (an in-RAM
  ///        PageStore or an out-of-core DiskStore): the scan drivers touch
  ///        every visited node through it with a per-scan cursor, so block
  ///        residency and page-read counts reflect the scan's real access
  ///        pattern — deterministically, independent of concurrent readers.
  ///        Partitioning also goes through the store when attached.
  /// \param exec batch/vectorization knobs (DESIGN.md §16).
  /// `exec.vectorize` selects the chunked scan driver with SIMD tag-id
  /// candidate prefiltering; false pins the node-at-a-time reference
  /// loop. Results and deterministic counters are identical either way.
  NokScanOperator(const xml::Document* doc, const pattern::BlossomTree* tree,
                  const pattern::NokTree* nok,
                  util::ThreadPool* pool = nullptr,
                  util::ResourceGuard* guard = nullptr,
                  NokResultCache* cache = nullptr,
                  const storage::NodeStore* store = nullptr,
                  ExecOptions exec = {});

  const std::vector<pattern::SlotId>& top_slots() const override {
    return matcher_.top_slots();
  }

  /// \brief Restricts the scan to nodes in [begin, end] (inclusive) — the
  /// bounded range of the BNLJ inner side (paper §4.3). Call before the
  /// first GetNext or after Rewind.
  void SetRange(xml::NodeId begin, xml::NodeId end);

  void Restrict(xml::NodeId begin, xml::NodeId end) override {
    SetRange(begin, end);
  }

  /// \brief Fetches the next match in document order of the match root.
  bool GetNext(nestedlist::NestedList* out) override;

  /// \brief Batch production: one timer/trace span per batch instead of
  /// per row, same stream and counters as repeated GetNext.
  size_t GetNextBatch(Batch* out, size_t max_rows) override;

  void Rewind() override;

  /// \brief Nodes the driver has scanned (the I/O proxy: one sequential
  /// pass costs NumNodes). Parallel partitions contribute their counts.
  uint64_t NodesScanned() const { return nodes_scanned_; }
  uint64_t MatchWork() const { return matcher_.MatchWork() + parallel_work_; }

  /// \brief Partitions used by the last parallel scan (0 = serial path).
  size_t PartitionsUsed() const { return partitions_used_; }

  const char* Name() const override { return "NokScan"; }

  /// \brief Counters (DESIGN.md §8): serial scans accumulate as the stream
  /// is consumed; parallel scans merge per-partition thread-local counts in
  /// partition order at materialization, and count matches/cells on
  /// handout. After Finish() both paths report identical totals.
  ExecStats Stats() const override;

 private:
  /// Chunk granularity of the batched scan drivers: guard checks, kernel
  /// candidate prefilters, and bulk nodes_scanned accounting all happen at
  /// this stride (DESIGN.md §16).
  static constexpr size_t kScanChunk = 512;

  /// GetNext body without the per-call timer/trace span (GetNext and
  /// GetNextBatch wrap it, amortizing both per row or per batch).
  bool GetNextImpl(nestedlist::NestedList* out);

  /// Scans nodes [begin, end] with matcher `m`, touching `store_` through
  /// `io`, bulk-counting scanned nodes / value comparisons into *scanned /
  /// *vcmps and appending matches to *out. Chunked: the guard is sampled at
  /// every ≤kScanChunk-node chunk top instead of the legacy per-node cadence
  /// — Check() never mutates counters, so untripped runs keep bitwise-
  /// identical counters; only trip *timing* coarsens (errored runs discard
  /// results). Returns false iff the guard tripped mid-scan.
  bool ScanRange(NokMatcher* m, xml::NodeId begin, xml::NodeId end,
                 storage::ScanCursor* io, uint64_t* scanned, uint64_t* vcmps,
                 std::vector<nestedlist::NestedList>* out) const;

  /// Collects NodeIds in [first, last] whose tag id equals target_tag_
  /// (the SIMD kernels; scalar fallback when exec_.simd is off). Touches
  /// the store block-at-a-time through `io` with the same read accounting
  /// as per-node Gets.
  void GatherCandidates(xml::NodeId first, xml::NodeId last,
                        storage::ScanCursor* io,
                        std::vector<xml::NodeId>* out) const;

  /// Charges the guard for an about-to-be-emitted match, then counts it.
  /// Counting after a *successful* charge keeps matches/cells stats in sync
  /// with what the consumer actually received when a budget trips on the
  /// final row (the stats audit fix; regression-tested in batch_exec_test).
  bool ChargeAndCount(const nestedlist::NestedList& nl);

  /// True when the pending scan may run partitioned: a pool is attached and
  /// the range covers the whole document (the BNLJ's restricted inner
  /// re-scans stay serial — their ranges are single subtrees).
  bool ParallelEligible() const;

  /// True when the pending scan may use the result cache: a cache is
  /// attached and the range covers the whole finished document.
  bool CacheEligible() const;

  /// Materializes all matches of the full-document scan via one matcher per
  /// partition, concatenated in partition (= document) order. With a cache,
  /// hit partitions replay their stored matches and only miss partitions
  /// scan (each complete miss fills its entry).
  void RunParallelScan();

  /// Cached serial path: probes the whole-range key, scanning eagerly into
  /// the buffer on a miss (then filling the cache). Emits the same stream,
  /// counters, and guard charges as the lazy serial loop.
  void RunSerialCachedScan();

  /// Cached virtual-root path ("~" NoKs match at most once per document).
  void RunVirtualCachedScan();

  /// Hands out the next buffered match: move, count, charge (the same
  /// deterministic main-thread charging as the parallel handout).
  bool HandOutBuffered(nestedlist::NestedList* out);

  /// Stores a complete match list under `key` unless the guard tripped
  /// mid-scan (a partial list must never be cached).
  void FillCache(const NokCacheKey& key,
                 const std::vector<nestedlist::NestedList>& matches);

  const xml::Document* doc_;
  const pattern::BlossomTree* tree_;
  const pattern::NokTree* nok_;
  NokMatcher matcher_;
  bool virtual_root_;
  bool virtual_done_ = false;
  xml::NodeId cursor_ = 0;
  xml::NodeId range_begin_ = 0;
  xml::NodeId range_end_;
  uint64_t nodes_scanned_ = 0;
  uint64_t matches_emitted_ = 0;
  uint64_t cells_emitted_ = 0;
  uint64_t value_cmps_ = 0;
  uint64_t wall_nanos_ = 0;

  util::ThreadPool* pool_;
  util::ResourceGuard* guard_;
  /// Shared materialization state: the parallel scan and both cached paths
  /// buffer their full match stream here and hand entries out by move.
  bool parallel_done_ = false;
  std::vector<nestedlist::NestedList> parallel_buf_;
  size_t parallel_pos_ = 0;
  uint64_t parallel_work_ = 0;
  size_t partitions_used_ = 0;

  NokResultCache* cache_;
  /// Canonical NoK fingerprint (computed once at construction when a cache
  /// is attached): the pattern half of every cache key this scan uses.
  std::string canonical_nok_;

  /// Optional paged store behind the document; the serial drivers thread
  /// `io_cursor_` through it (parallel partitions use private cursors).
  const storage::NodeStore* store_;
  storage::ScanCursor io_cursor_;

  ExecOptions exec_;
  /// Root tag id for kernel candidate prefiltering; kNullTag when the tag
  /// is absent from the document (zero candidates, matching the reference
  /// scan's zero matches).
  xml::TagId target_tag_ = xml::kNullTag;
  /// Prefiltering is sound only for a concrete element root: wildcard /
  /// attribute / virtual roots fall back to the per-node reference loop.
  bool kernel_eligible_ = false;
  /// Serial vectorized path: matches found by the current chunk, handed
  /// out one per GetNext (charged on handout like the buffered paths).
  std::vector<nestedlist::NestedList> pending_;
  size_t pending_pos_ = 0;
};

}  // namespace exec
}  // namespace blossomtree

#endif  // BLOSSOMTREE_EXEC_NOK_SCAN_H_
