#ifndef BLOSSOMTREE_EXEC_NOK_SCAN_H_
#define BLOSSOMTREE_EXEC_NOK_SCAN_H_

#include <cstdint>
#include <vector>

#include "exec/operator.h"
#include "nestedlist/nested_list.h"
#include "pattern/decompose.h"
#include "xml/document.h"

namespace blossomtree {
namespace exec {

/// \brief Sentinel NodeId for the virtual document root "~" (the node above
/// the root element that anchors absolute paths).
constexpr xml::NodeId kVirtualRootNode = static_cast<xml::NodeId>(-2);

/// \brief NoK pattern-tree matcher (paper Algorithm 2): matches one NoK
/// pattern tree (local axes only) against the subtree rooted at a given
/// XML node, building the NestedList groups for every returning node in
/// one depth-first pass.
class NokMatcher {
 public:
  NokMatcher(const xml::Document* doc, const pattern::BlossomTree* tree,
             const pattern::NokTree* nok);

  /// \brief The NoK's local top slots: the slots its output NestedLists'
  /// `tops` are aligned with.
  const std::vector<pattern::SlotId>& top_slots() const { return top_slots_; }

  /// \brief Attempts to match the NoK rooted at `x` (kVirtualRootNode for a
  /// "~"-rooted NoK). On success fills `out` and returns true.
  bool MatchAt(xml::NodeId x, nestedlist::NestedList* out);

  /// \brief True if `x` can possibly match the NoK root (tag + value test);
  /// the scan driver uses this as a cheap prefilter.
  bool RootTest(xml::NodeId x) const;

  /// \brief Pattern-vertex/node constraint checks performed so far (a
  /// work metric for the ablation benches).
  uint64_t MatchWork() const { return match_work_; }

 private:
  struct LocalVertex {
    pattern::VertexId vertex;
    std::vector<uint32_t> local_children;  ///< Indices into locals_.
    /// Slots this vertex contributes upward: [slot(v)] if returning, else
    /// the concatenation over local children.
    std::vector<pattern::SlotId> next_slots;
    /// For returning vertices: for each local child's next slot, its index
    /// within slot(v).children (global child-slot layout).
    std::vector<size_t> child_slot_index;
  };

  bool ConstraintsOk(const pattern::Vertex& v, xml::NodeId x) const;
  bool TagOk(const pattern::Vertex& v, xml::NodeId x) const;
  bool MatchVertex(uint32_t local_index, xml::NodeId x,
                   std::vector<nestedlist::Group>* out_groups);

  const xml::Document* doc_;
  const pattern::BlossomTree* tree_;
  const pattern::NokTree* nok_;
  std::vector<LocalVertex> locals_;  ///< locals_[0] is the NoK root.
  std::vector<pattern::SlotId> top_slots_;
  uint64_t match_work_ = 0;
};

/// \brief Sequential-scan driver (paper §3.3's "sequential scan of the XML
/// tree against the blossom tree"): tries the NoK at every node in document
/// order and emits one NestedList per match, as a Volcano-style iterator.
class NokScanOperator : public NestedListOperator {
 public:
  NokScanOperator(const xml::Document* doc, const pattern::BlossomTree* tree,
                  const pattern::NokTree* nok);

  const std::vector<pattern::SlotId>& top_slots() const override {
    return matcher_.top_slots();
  }

  /// \brief Restricts the scan to nodes in [begin, end] (inclusive) — the
  /// bounded range of the BNLJ inner side (paper §4.3). Call before the
  /// first GetNext or after Rewind.
  void SetRange(xml::NodeId begin, xml::NodeId end);

  void Restrict(xml::NodeId begin, xml::NodeId end) override {
    SetRange(begin, end);
  }

  /// \brief Fetches the next match in document order of the match root.
  bool GetNext(nestedlist::NestedList* out) override;

  void Rewind() override;

  /// \brief Nodes the driver has scanned (the I/O proxy: one sequential
  /// pass costs NumNodes).
  uint64_t NodesScanned() const { return nodes_scanned_; }
  uint64_t MatchWork() const { return matcher_.MatchWork(); }

 private:
  const xml::Document* doc_;
  NokMatcher matcher_;
  bool virtual_root_;
  bool virtual_done_ = false;
  xml::NodeId cursor_ = 0;
  xml::NodeId range_begin_ = 0;
  xml::NodeId range_end_;
  uint64_t nodes_scanned_ = 0;
};

}  // namespace exec
}  // namespace blossomtree

#endif  // BLOSSOMTREE_EXEC_NOK_SCAN_H_
