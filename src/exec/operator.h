#ifndef BLOSSOMTREE_EXEC_OPERATOR_H_
#define BLOSSOMTREE_EXEC_OPERATOR_H_

#include <vector>

#include "nestedlist/nested_list.h"
#include "pattern/blossom_tree.h"
#include "xml/document.h"

namespace blossomtree {
namespace exec {

/// \brief Volcano-style iterator over NestedLists (paper §4.2: operators
/// expose GetNext; pipelined joins compose them without materialization).
class NestedListOperator {
 public:
  virtual ~NestedListOperator() = default;

  /// \brief The slot context of emitted NestedLists.
  virtual const std::vector<pattern::SlotId>& top_slots() const = 0;

  /// \brief Produces the next NestedList; false at end of stream.
  virtual bool GetNext(nestedlist::NestedList* out) = 0;

  /// \brief Restarts the stream from the beginning.
  virtual void Rewind() = 0;

  /// \brief Scan-range push-down: restricts the underlying document scan to
  /// nodes in [begin, end]. Joins propagate this to their outer scan; the
  /// BNLJ uses it to bound its inner side per outer match (paper §4.3).
  /// No-op by default. Call Rewind() afterwards to take effect.
  virtual void Restrict(xml::NodeId begin, xml::NodeId end) {
    (void)begin;
    (void)end;
  }
};

/// \brief Drains an operator into a materialized sequence.
std::vector<nestedlist::NestedList> Drain(NestedListOperator* op);

}  // namespace exec
}  // namespace blossomtree

#endif  // BLOSSOMTREE_EXEC_OPERATOR_H_
