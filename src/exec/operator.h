#ifndef BLOSSOMTREE_EXEC_OPERATOR_H_
#define BLOSSOMTREE_EXEC_OPERATOR_H_

#include <string>
#include <vector>

#include "exec/batch.h"
#include "exec/exec_stats.h"
#include "nestedlist/nested_list.h"
#include "pattern/blossom_tree.h"
#include "util/trace.h"
#include "xml/document.h"

namespace blossomtree {
namespace exec {

/// \brief Volcano-style iterator over NestedLists (paper §4.2: operators
/// expose GetNext; pipelined joins compose them without materialization).
///
/// Every operator additionally exposes the observability surface of
/// DESIGN.md §8: a name/label, ExecStats counters, and child links so the
/// EXPLAIN ANALYZE renderer and QueryProfile export can walk the executed
/// plan tree.
class NestedListOperator {
 public:
  virtual ~NestedListOperator() = default;

  /// \brief The slot context of emitted NestedLists.
  virtual const std::vector<pattern::SlotId>& top_slots() const = 0;

  /// \brief Produces the next NestedList; false at end of stream.
  virtual bool GetNext(nestedlist::NestedList* out) = 0;

  /// \brief Batch-at-a-time production (DESIGN.md §16): clears `out` and
  /// refills it with up to `max_rows` NestedLists. Returns the number
  /// produced; 0 ⟺ end of stream. The base implementation adapts
  /// node-at-a-time GetNext; batch-native operators override it to pay
  /// the timer, trace span, and guard checks once per batch instead of
  /// once per row. Mixing GetNext and GetNextBatch calls on one stream is
  /// legal — both advance the same cursor.
  virtual size_t GetNextBatch(Batch* out, size_t max_rows) {
    out->rows.clear();
    nestedlist::NestedList nl;
    while (out->rows.size() < max_rows && GetNext(&nl)) {
      out->rows.push_back(std::move(nl));
      nl = nestedlist::NestedList();
    }
    return out->rows.size();
  }

  /// \brief Restarts the stream from the beginning.
  virtual void Rewind() = 0;

  /// \brief Scan-range push-down: restricts the underlying document scan to
  /// nodes in [begin, end]. Joins propagate this to their outer scan; the
  /// BNLJ uses it to bound its inner side per outer match (paper §4.3).
  /// No-op by default. Call Rewind() afterwards to take effect.
  virtual void Restrict(xml::NodeId begin, xml::NodeId end) {
    (void)begin;
    (void)end;
  }

  // -- Observability (DESIGN.md §8) -----------------------------------------

  /// \brief Operator-class name ("NokScan", "PipelinedDescJoin", ...).
  virtual const char* Name() const { return "Operator"; }

  /// \brief Execution counters accumulated so far. Profile collectors call
  /// Finish() first so lazily-consumed streams report run-to-completion
  /// totals (identical across thread counts).
  virtual ExecStats Stats() const { return ExecStats{}; }

  /// \brief Runs this operator's stream to completion without emitting to a
  /// consumer, then finishes its children. EXPLAIN ANALYZE semantics: after
  /// Finish(), counters cover the whole input, whether the stream was
  /// consumed lazily (serial scans) or materialized eagerly (parallel
  /// scans) — the normalization the cross-thread determinism tests rely on.
  virtual void Finish() {
    nestedlist::NestedList nl;
    while (GetNext(&nl)) nl = nestedlist::NestedList();
    for (size_t i = 0; i < NumChildren(); ++i) MutableChild(i)->Finish();
  }

  /// \brief Plan-tree links for renderers (0 children by default).
  virtual size_t NumChildren() const { return 0; }
  virtual const NestedListOperator* Child(size_t i) const {
    (void)i;
    return nullptr;
  }
  virtual NestedListOperator* MutableChild(size_t i) {
    (void)i;
    return nullptr;
  }

  /// \brief Display label set by the planner ("NokScan(section,figure)");
  /// falls back to Name() when unset.
  std::string Label() const { return label_.empty() ? Name() : label_; }
  void set_label(std::string label) { label_ = std::move(label); }

  /// \brief Planner cardinality estimate for estimated-vs-actual EXPLAIN;
  /// negative when the plan was built without a cost model.
  double estimated_rows() const { return estimated_rows_; }
  void set_estimated_rows(double rows) { estimated_rows_ = rows; }

 private:
  std::string label_;
  double estimated_rows_ = -1.0;
};

/// \brief Span name for an operator's timeline events: the planner label
/// when tracing is on, and a free empty string otherwise — call sites pay
/// for the label string only on traced runs (DESIGN.md §10).
inline std::string TraceName(const NestedListOperator& op) {
  return util::Tracer::Get().enabled() ? op.Label() : std::string();
}

/// \brief Drains an operator into a materialized sequence.
std::vector<nestedlist::NestedList> Drain(NestedListOperator* op);

/// \brief Renders the operator tree rooted at `op` as indented EXPLAIN
/// ANALYZE lines: one "Label (est=...) (actual: counters)" line per
/// operator, children indented two spaces deeper. Call op->Finish() first
/// for run-to-completion counters.
std::string ExplainAnalyzeTree(const NestedListOperator& op, int depth = 0);

}  // namespace exec
}  // namespace blossomtree

#endif  // BLOSSOMTREE_EXEC_OPERATOR_H_
