#ifndef BLOSSOMTREE_EXEC_TWIG_SEMIJOIN_H_
#define BLOSSOMTREE_EXEC_TWIG_SEMIJOIN_H_

#include <vector>

#include "exec/exec_stats.h"
#include "exec/structural_join.h"
#include "pattern/blossom_tree.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "xml/document.h"

namespace blossomtree {
namespace exec {

/// \brief Statistics of one semijoin evaluation.
struct TwigSemijoinStats {
  uint64_t candidates_loaded = 0;  ///< Index entries read.
  uint64_t semijoins = 0;          ///< Binary structural semijoins executed.
  StructuralJoinStats join;        ///< Totals over all per-edge semijoins.
  uint64_t value_cmps = 0;         ///< Value predicate comparisons.
  uint64_t wall_nanos = 0;         ///< Wall time of Run().
};

/// \brief Maps semijoin counters onto the common ExecStats layout
/// (DESIGN.md §8): index entries = candidate loads, comparisons = semijoin
/// merge inputs + value predicates, matches = semijoin emits.
ExecStats ToExecStats(const TwigSemijoinStats& s);

/// \brief The classic join-based twig evaluation (paper §2.1's second
/// class, references [20]/[2]): every pattern edge becomes a binary
/// structural join over document-ordered tag-index candidate lists.
///
/// For the distinct-result-node semantics used across this repository,
/// full pairwise joins are unnecessary: two *semijoin* sweeps suffice —
/// a bottom-up pass shrinking each vertex's candidates to those with the
/// required descendants, then a top-down pass keeping candidates that have
/// a matching ancestor chain. Each pass runs one stack-based structural
/// merge join per edge (O(|anc| + |desc|)).
///
/// Supports the same query class as TwigStack (/ and // axes, value
/// constraints, no positions); returns kUnsupported otherwise.
class TwigSemijoin {
 public:
  /// \param pool optional worker pool: each per-edge semijoin then runs
  ///        partitioned over the outer sibling forest (see
  ///        structural_join.h); nullptr keeps the exact serial merges.
  /// \param guard optional per-query resource guard, checked between
  ///        candidate loads and per-edge semijoins; a tripped guard makes
  ///        Run return guard->status() (kResourceExhausted / kCancelled).
  TwigSemijoin(const xml::Document* doc, const pattern::BlossomTree* tree,
               util::ThreadPool* pool = nullptr,
               util::ResourceGuard* guard = nullptr);

  /// \brief Runs the semijoin program; fills `result` with the distinct
  /// document-ordered matches of `result_vertex`.
  Status Run(pattern::VertexId result_vertex,
             std::vector<xml::NodeId>* result);

  const TwigSemijoinStats& stats() const { return stats_; }

 private:
  /// OK while the attached guard (if any) permits further work.
  Status GuardOk() const;
  Status Validate(pattern::VertexId v) const;
  std::vector<xml::NodeId> Candidates(pattern::VertexId v);
  Status BottomUp(pattern::VertexId v);
  void TopDown(pattern::VertexId v);

  const xml::Document* doc_;
  const pattern::BlossomTree* tree_;
  util::ThreadPool* pool_;
  util::ResourceGuard* guard_;
  std::vector<std::vector<xml::NodeId>> candidates_;  ///< Per VertexId.
  TwigSemijoinStats stats_;
};

}  // namespace exec
}  // namespace blossomtree

#endif  // BLOSSOMTREE_EXEC_TWIG_SEMIJOIN_H_
