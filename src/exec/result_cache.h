#ifndef BLOSSOMTREE_EXEC_RESULT_CACHE_H_
#define BLOSSOMTREE_EXEC_RESULT_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nestedlist/nested_list.h"
#include "util/cache.h"
#include "xml/document.h"

namespace blossomtree {
namespace exec {

/// \brief Identity of one cached NoK scan (DESIGN.md §11): which document
/// build (generation), which pattern (the full canonical NoK string — the
/// cache never trusts a hash for equality), and which contiguous node range
/// (the whole document for serial scans, one storage::PartitionSubtrees
/// range per partition in parallel mode).
struct NokCacheKey {
  uint64_t doc_generation = 0;
  std::string nok;
  xml::NodeId begin = 0;
  xml::NodeId end = 0;

  bool operator==(const NokCacheKey& o) const {
    return doc_generation == o.doc_generation && begin == o.begin &&
           end == o.end && nok == o.nok;
  }
};

struct NokCacheKeyHash {
  size_t operator()(const NokCacheKey& k) const;
};

/// \brief The complete, in-document-order match stream of one NoK scan over
/// one node range. `matches` is exactly what the cold scan's iterator hands
/// out, so replaying a hit is byte-identical to rescanning.
struct CachedNokScan {
  std::vector<nestedlist::NestedList> matches;
  uint64_t cells = 0;  ///< Total NestedList cells across all matches.
};

/// \brief Approximate in-memory footprint charged to the cache budget.
uint64_t CachedNokScanBytes(const NokCacheKey& key, const CachedNokScan& scan);

/// \brief The NoK sub-result cache: maps (generation, NoK fingerprint,
/// range) to materialized match lists. Shared by every NokScanOperator of
/// an engine; thread-safe (parallel partitions of one scan probe and fill
/// it concurrently).
class NokResultCache {
 public:
  explicit NokResultCache(const util::CacheOptions& options)
      : cache_(options) {}

  std::shared_ptr<const CachedNokScan> Get(const NokCacheKey& key) {
    return cache_.Get(key);
  }

  void Put(const NokCacheKey& key, std::shared_ptr<const CachedNokScan> scan) {
    uint64_t bytes = CachedNokScanBytes(key, *scan);
    cache_.Put(key, std::move(scan), bytes);
  }

  void Clear() { cache_.Clear(); }
  util::CacheStats Stats() const { return cache_.Stats(); }

 private:
  util::ShardedLruCache<NokCacheKey, CachedNokScan, NokCacheKeyHash> cache_;
};

}  // namespace exec
}  // namespace blossomtree

#endif  // BLOSSOMTREE_EXEC_RESULT_CACHE_H_
