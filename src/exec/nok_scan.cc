#include "exec/nok_scan.h"

#include <algorithm>
#include <memory>
#include <span>

#include "exec/kernels.h"
#include "exec/value_ops.h"
#include "nestedlist/ops.h"
#include "pattern/fingerprint.h"

namespace blossomtree {
namespace exec {

using nestedlist::Entry;
using nestedlist::Group;
using pattern::EdgeMode;
using pattern::SlotId;
using pattern::VertexId;

NokMatcher::NokMatcher(const xml::Document* doc,
                       const pattern::BlossomTree* tree,
                       const pattern::NokTree* nok)
    : doc_(doc), tree_(tree), nok_(nok) {
  // Build the local vertex table in the NoK's DFS vertex order; the root is
  // locals_[0].
  std::vector<uint32_t> local_of(tree->NumVertices(),
                                 static_cast<uint32_t>(-1));
  locals_.reserve(nok->vertices.size());
  for (VertexId v : nok->vertices) {
    local_of[v] = static_cast<uint32_t>(locals_.size());
    LocalVertex lv;
    lv.vertex = v;
    locals_.push_back(std::move(lv));
  }
  for (LocalVertex& lv : locals_) {
    for (VertexId c : tree->vertex(lv.vertex).children) {
      if (xpath::IsLocalAxis(tree->vertex(c).axis) &&
          local_of[c] != static_cast<uint32_t>(-1)) {
        lv.local_children.push_back(local_of[c]);
      }
    }
  }
  // next_slots: bottom-up over the NoK (children have larger local index
  // only if DFS order guarantees it — Algorithm 1 pushes children after
  // parents, so iterate in reverse).
  for (size_t i = locals_.size(); i-- > 0;) {
    LocalVertex& lv = locals_[i];
    const pattern::Vertex& vx = tree->vertex(lv.vertex);
    if (vx.returning) {
      lv.next_slots.push_back(tree->SlotOfVertex(lv.vertex));
    } else {
      for (uint32_t c : lv.local_children) {
        lv.next_slots.insert(lv.next_slots.end(),
                             locals_[c].next_slots.begin(),
                             locals_[c].next_slots.end());
      }
    }
    if (vx.returning) {
      // Map each child-contributed slot to its index in the global child
      // layout of this vertex's slot.
      SlotId my_slot = tree->SlotOfVertex(lv.vertex);
      for (uint32_t c : lv.local_children) {
        for (SlotId s : locals_[c].next_slots) {
          lv.child_slot_index.push_back(
              nestedlist::ChildIndex(*tree, my_slot, s));
        }
      }
    }
  }
  top_slots_ = locals_[0].next_slots;
}

bool NokMatcher::TagOk(const pattern::Vertex& v, xml::NodeId x) const {
  if (v.IsVirtualRoot()) return x == kVirtualRootNode;
  if (x == kVirtualRootNode) return false;
  if (!doc_->IsElement(x)) return false;
  return v.MatchesAnyTag() || doc_->TagName(x) == v.tag;
}

bool NokMatcher::ConstraintsOk(const pattern::Vertex& v, xml::NodeId x) const {
  if (!TagOk(v, x)) return false;
  if (v.value && x != kVirtualRootNode) {
    if (!CompareValues(doc_->StringValue(x), v.value->op, v.value->literal)) {
      return false;
    }
  }
  return true;
}

bool NokMatcher::RootTest(xml::NodeId x) const {
  return ConstraintsOk(tree_->vertex(locals_[0].vertex), x);
}

bool NokMatcher::MatchAt(xml::NodeId x, nestedlist::NestedList* out) {
  // Positional predicate on the NoK root (e.g. //book[2] after the cut):
  // positions count among same-parent siblings matching the tag test.
  const pattern::Vertex& root = tree_->vertex(locals_[0].vertex);
  if (root.position > 0 && x != kVirtualRootNode) {
    if (xml::SiblingRank(*doc_, x, root.tag) !=
        static_cast<uint32_t>(root.position)) {
      return false;
    }
  }
  std::vector<Group> groups;
  if (!MatchVertex(0, x, &groups)) return false;
  out->tops = std::move(groups);
  return true;
}

bool NokMatcher::MatchVertex(uint32_t local_index, xml::NodeId x,
                             std::vector<Group>* out_groups) {
  ++match_work_;
  // Guard sample (DESIGN.md §9): a full Check (clock + token) every ~1k
  // work units keeps deadline detection prompt even when one match recurses
  // for a long time, at negligible cost. A tripped guard aborts the match;
  // the driver stops the scan and the engine reports guard->status().
  if (guard_ != nullptr && (match_work_ & 0x3FF) == 0 && !guard_->Check()) {
    return false;
  }
  const LocalVertex& lv = locals_[local_index];
  const pattern::Vertex& vx = tree_->vertex(lv.vertex);
  if (!ConstraintsOk(vx, x)) return false;

  // Accumulate matches per local child (each child contributes a fixed
  // number of slot groups). Attribute children are constraints evaluated
  // directly on x.
  size_t n_children = lv.local_children.size();
  std::vector<std::vector<Group>> acc(n_children);
  std::vector<bool> matched(n_children, false);
  std::vector<int> tag_count(n_children, 0);
  for (size_t k = 0; k < n_children; ++k) {
    acc[k].resize(locals_[lv.local_children[k]].next_slots.size());
  }

  auto try_child = [&](size_t k, xml::NodeId u) {
    const LocalVertex& s = locals_[lv.local_children[k]];
    const pattern::Vertex& sv = tree_->vertex(s.vertex);
    ++match_work_;
    if (!TagOk(sv, u)) return;
    if (sv.position > 0) {
      ++tag_count[k];
      if (tag_count[k] != sv.position) return;
    }
    std::vector<Group> sub;
    if (!MatchVertex(lv.local_children[k], u, &sub)) return;
    matched[k] = true;
    for (size_t g = 0; g < sub.size(); ++g) {
      acc[k][g].insert(acc[k][g].end(),
                       std::make_move_iterator(sub[g].begin()),
                       std::make_move_iterator(sub[g].end()));
    }
  };

  for (size_t k = 0; k < n_children; ++k) {
    const LocalVertex& s = locals_[lv.local_children[k]];
    const pattern::Vertex& sv = tree_->vertex(s.vertex);
    if (!sv.tag.empty() && sv.tag[0] == '@') {
      // Attribute constraint: check presence (and value) on x itself.
      std::string_view value;
      if (x != kVirtualRootNode &&
          doc_->AttributeValue(x, sv.tag.substr(1), &value)) {
        if (!sv.value ||
            CompareValues(value, sv.value->op, sv.value->literal)) {
          matched[k] = true;
          if (sv.returning) {
            Entry e;
            e.node = x;  // Attribute matches surface their owner element.
            e.groups.resize(
                tree_->slot(tree_->SlotOfVertex(s.vertex)).children.size());
            acc[k][0].push_back(std::move(e));
          }
        }
      }
      continue;
    }
    if (sv.axis == xpath::Axis::kFollowingSibling) {
      if (x == kVirtualRootNode) continue;
      for (xml::NodeId u = doc_->NextSibling(x); u != xml::kNullNode;
           u = doc_->NextSibling(u)) {
        try_child(k, u);
      }
      continue;
    }
    // Child axis.
    if (x == kVirtualRootNode) {
      if (!doc_->empty()) try_child(k, doc_->Root());
    } else {
      for (xml::NodeId u = doc_->FirstChild(x); u != xml::kNullNode;
           u = doc_->NextSibling(u)) {
        try_child(k, u);
      }
    }
  }

  // Mandatory (f-mode) children must have matched (Algorithm 2 line 21:
  // unmatched pattern nodes invalidate the partial result).
  for (size_t k = 0; k < n_children; ++k) {
    const pattern::Vertex& sv =
        tree_->vertex(locals_[lv.local_children[k]].vertex);
    if (sv.mode == EdgeMode::kFor && !matched[k]) return false;
  }

  // Assemble this vertex's contribution.
  out_groups->clear();
  if (vx.returning) {
    SlotId my_slot = tree_->SlotOfVertex(lv.vertex);
    Entry e;
    e.node = x;
    e.groups.resize(tree_->slot(my_slot).children.size());
    size_t flat = 0;
    for (size_t k = 0; k < n_children; ++k) {
      for (size_t g = 0; g < acc[k].size(); ++g, ++flat) {
        Group& dst = e.groups[lv.child_slot_index[flat]];
        dst.insert(dst.end(), std::make_move_iterator(acc[k][g].begin()),
                   std::make_move_iterator(acc[k][g].end()));
      }
    }
    Group mine;
    mine.push_back(std::move(e));
    out_groups->push_back(std::move(mine));
  } else {
    for (size_t k = 0; k < n_children; ++k) {
      for (Group& g : acc[k]) {
        out_groups->push_back(std::move(g));
      }
    }
  }
  return true;
}

NokScanOperator::NokScanOperator(const xml::Document* doc,
                                 const pattern::BlossomTree* tree,
                                 const pattern::NokTree* nok,
                                 util::ThreadPool* pool,
                                 util::ResourceGuard* guard,
                                 NokResultCache* cache,
                                 const storage::NodeStore* store,
                                 ExecOptions exec)
    : doc_(doc),
      tree_(tree),
      nok_(nok),
      matcher_(doc, tree, nok),
      virtual_root_(tree->vertex(nok->root).IsVirtualRoot()),
      range_end_(doc->NumNodes() == 0
                     ? 0
                     : static_cast<xml::NodeId>(doc->NumNodes() - 1)),
      pool_(pool),
      guard_(guard),
      cache_(cache),
      store_(store),
      exec_(exec) {
  matcher_.set_guard(guard);
  if (cache_ != nullptr) {
    canonical_nok_ = pattern::CanonicalNok(*tree, *nok);
  }
  // Kernel candidate prefiltering needs a concrete element root tag: the
  // prefilter `tag_id(x) == target` then implies exactly the set of nodes
  // the reference loop's RootTest would spend any counted work on (TagOk
  // is a free string compare; value comparisons and match work only start
  // after it passes), so counters stay bitwise-identical. Wildcard,
  // attribute, and virtual roots use the per-node reference loop.
  const pattern::Vertex& rootv = tree->vertex(nok->root);
  kernel_eligible_ = !virtual_root_ && !rootv.MatchesAnyTag() &&
                     !rootv.tag.empty() && rootv.tag[0] != '@';
  if (kernel_eligible_) {
    // A tag absent from the document (Lookup -> kNullTag) means zero
    // candidates — the correct answer, since no node can pass TagOk.
    target_tag_ = doc->tags().Lookup(rootv.tag);
  }
}

void NokScanOperator::SetRange(xml::NodeId begin, xml::NodeId end) {
  range_begin_ = begin;
  range_end_ = end;
  cursor_ = begin;
  parallel_done_ = false;
  parallel_buf_.clear();
  parallel_pos_ = 0;
  pending_.clear();
  pending_pos_ = 0;
  io_cursor_ = storage::ScanCursor();
}

bool NokScanOperator::ParallelEligible() const {
  return pool_ != nullptr && pool_->NumThreads() > 1 && !virtual_root_ &&
         range_begin_ == 0 && doc_->NumNodes() > 1 &&
         static_cast<size_t>(range_end_) + 1 >= doc_->NumNodes();
}

bool NokScanOperator::CacheEligible() const {
  // Full-document scans only: the BNLJ's range-restricted inner re-scans
  // are many, small, and keyed by arbitrary subtree ranges — caching them
  // would flood the budget with entries that rarely recur. An unfinished
  // document (generation 0) has no invalidation identity, so it is never
  // cached either.
  return cache_ != nullptr && doc_->generation() != 0 &&
         doc_->NumNodes() > 0 && range_begin_ == 0 &&
         static_cast<size_t>(range_end_) + 1 >= doc_->NumNodes();
}

bool NokScanOperator::ChargeAndCount(const nestedlist::NestedList& nl) {
  uint64_t cells = CountCells(nl);
  // Charge *before* counting: when the budget trips on this row the
  // consumer never receives it, and matches/cells must reflect what was
  // actually delivered (the mid-stream-cancellation stats audit).
  if (guard_ != nullptr &&
      !guard_->ChargeCells(cells, cells * sizeof(nestedlist::Entry))) {
    return false;
  }
  ++matches_emitted_;
  cells_emitted_ += cells;
  return true;
}

bool NokScanOperator::HandOutBuffered(nestedlist::NestedList* out) {
  // A trip during materialization leaves a partial buffer: end the stream
  // instead of handing out a truncated prefix as if complete.
  if (guard_ != nullptr && guard_->Tripped()) return false;
  if (parallel_pos_ >= parallel_buf_.size()) return false;
  *out = std::move(parallel_buf_[parallel_pos_++]);
  // Cell charging happens at handout (main thread, identical order at
  // every thread count and on cache hits) so the budget verdict is
  // deterministic.
  return ChargeAndCount(*out);
}

void NokScanOperator::FillCache(
    const NokCacheKey& key,
    const std::vector<nestedlist::NestedList>& matches) {
  if (guard_ != nullptr && guard_->Tripped()) return;
  util::TraceSpan span("cache", "result.fill");
  auto entry = std::make_shared<CachedNokScan>();
  entry->matches = matches;
  for (const nestedlist::NestedList& nl : matches) {
    entry->cells += CountCells(nl);
  }
  cache_->Put(key, std::move(entry));
}

void NokScanOperator::GatherCandidates(xml::NodeId first, xml::NodeId last,
                                       storage::ScanCursor* io,
                                       std::vector<xml::NodeId>* out) const {
  if (store_ != nullptr) {
    // Block-at-a-time through the store: NextBlock counts one read per
    // block entered — exactly what sequential per-node Gets count — and
    // the kernel filters each resident block in place.
    for (xml::NodeId n = first; n <= last;) {
      std::span<const storage::NodeRecord> block =
          store_->NextBlock(n, last, io);
      if (target_tag_ != xml::kNullTag) {
        FilterTagEqRecords(block.data(), block.size(), target_tag_, n,
                           exec_.simd, out);
      }
      if (block.size() >= static_cast<size_t>(last - n) + 1) break;
      n += static_cast<xml::NodeId>(block.size());
    }
    return;
  }
  if (target_tag_ == xml::kNullTag) return;
  size_t count = static_cast<size_t>(last - first) + 1;
  if (const xml::PackedNodeRecord* recs = doc_->ExternalRecords()) {
    FilterTagEqRecords(recs + first, count, target_tag_, first, exec_.simd,
                       out);
  } else {
    FilterTagEq(doc_->TagArray() + first, count, target_tag_, first,
                exec_.simd, out);
  }
}

bool NokScanOperator::ScanRange(NokMatcher* m, xml::NodeId begin,
                                xml::NodeId end, storage::ScanCursor* io,
                                uint64_t* scanned, uint64_t* vcmps,
                                std::vector<nestedlist::NestedList>* out)
    const {
  size_t total = doc_->NumNodes();
  if (total == 0 || begin > end) return true;
  if (static_cast<size_t>(end) >= total) {
    end = static_cast<xml::NodeId>(total - 1);
  }
  std::vector<xml::NodeId> candidates;
  nestedlist::NestedList nl;
  for (xml::NodeId x = begin;;) {
    // Chunk-top guard sample. Check() never mutates a counter, so the
    // coarser-than-legacy cadence leaves untripped-run counters bitwise
    // unchanged; only trip *timing* coarsens (results are discarded on a
    // trip, so nothing observable depends on it).
    if (guard_ != nullptr && (guard_->Tripped() || !guard_->Check())) {
      return false;
    }
    xml::NodeId chunk_end = end;
    if (chunk_end - x >= kScanChunk) {
      chunk_end = x + static_cast<xml::NodeId>(kScanChunk) - 1;
    }
    uint64_t cmp_before = ValueComparisonCount();
    if (kernel_eligible_) {
      candidates.clear();
      GatherCandidates(x, chunk_end, io, &candidates);
      *scanned += chunk_end - x + 1;
      for (xml::NodeId c : candidates) {
        if (m->RootTest(c) && m->MatchAt(c, &nl) &&
            (guard_ == nullptr || !guard_->Tripped())) {
          out->push_back(std::move(nl));
          nl = nestedlist::NestedList();
        }
        if (guard_ != nullptr && guard_->Tripped()) {
          *vcmps += ValueComparisonCount() - cmp_before;
          return false;
        }
      }
    } else {
      // Per-node body for roots the prefilter cannot represent
      // (wildcard / attribute roots).
      for (xml::NodeId c = x; c <= chunk_end; ++c) {
        ++*scanned;
        if (store_ != nullptr) store_->Get(c, io);
        if (m->RootTest(c) && m->MatchAt(c, &nl) &&
            (guard_ == nullptr || !guard_->Tripped())) {
          out->push_back(std::move(nl));
          nl = nestedlist::NestedList();
        }
        if (guard_ != nullptr && guard_->Tripped()) {
          *vcmps += ValueComparisonCount() - cmp_before;
          return false;
        }
      }
    }
    *vcmps += ValueComparisonCount() - cmp_before;
    if (chunk_end == end) break;
    x = chunk_end + 1;
  }
  return true;
}

void NokScanOperator::RunSerialCachedScan() {
  parallel_buf_.clear();
  parallel_pos_ = 0;
  NokCacheKey key{doc_->generation(), canonical_nok_, range_begin_,
                  range_end_};
  {
    util::TraceSpan span("cache", "result.lookup");
    if (std::shared_ptr<const CachedNokScan> hit = cache_->Get(key)) {
      // Deep copy: buffered matches are handed out by move, and the cached
      // master must stay intact for the next hit.
      parallel_buf_ = hit->matches;
      parallel_done_ = true;
      return;
    }
  }
  if (exec_.vectorize) {
    // Cold: the chunked driver, run eagerly into the buffer. Same stream
    // and untripped-run counters as the reference loop below.
    ScanRange(&matcher_, cursor_, range_end_, &io_cursor_, &nodes_scanned_,
              &value_cmps_, &parallel_buf_);
    parallel_done_ = true;
    FillCache(key, parallel_buf_);
    return;
  }
  // Cold: the lazy serial loop, run eagerly into the buffer with the same
  // per-node guard sampling and counters.
  nestedlist::NestedList nl;
  while (cursor_ <= range_end_ &&
         static_cast<size_t>(cursor_) < doc_->NumNodes()) {
    if (guard_ != nullptr &&
        (guard_->Tripped() ||
         ((nodes_scanned_ & 0x1FF) == 0x1FF && !guard_->Check()))) {
      break;
    }
    xml::NodeId x = cursor_++;
    ++nodes_scanned_;
    // Touch the backing store so block residency and read counters track
    // the scan even though matching runs over the document facade.
    if (store_ != nullptr) store_->Get(x, &io_cursor_);
    uint64_t cmp_before = ValueComparisonCount();
    bool matched = matcher_.RootTest(x) && matcher_.MatchAt(x, &nl);
    value_cmps_ += ValueComparisonCount() - cmp_before;
    if (matched && (guard_ == nullptr || !guard_->Tripped())) {
      parallel_buf_.push_back(std::move(nl));
      nl = nestedlist::NestedList();
    }
  }
  parallel_done_ = true;
  FillCache(key, parallel_buf_);
}

void NokScanOperator::RunVirtualCachedScan() {
  parallel_buf_.clear();
  parallel_pos_ = 0;
  NokCacheKey key{doc_->generation(), canonical_nok_, range_begin_,
                  range_end_};
  {
    util::TraceSpan span("cache", "result.lookup");
    if (std::shared_ptr<const CachedNokScan> hit = cache_->Get(key)) {
      parallel_buf_ = hit->matches;
      parallel_done_ = true;
      return;
    }
  }
  ++nodes_scanned_;
  uint64_t cmp_before = ValueComparisonCount();
  nestedlist::NestedList nl;
  bool matched = matcher_.MatchAt(kVirtualRootNode, &nl);
  value_cmps_ += ValueComparisonCount() - cmp_before;
  if (matched && (guard_ == nullptr || !guard_->Tripped())) {
    parallel_buf_.push_back(std::move(nl));
  }
  parallel_done_ = true;
  FillCache(key, parallel_buf_);
}

void NokScanOperator::RunParallelScan() {
  util::TraceSpan span(
      "exec", util::Tracer::Get().enabled() ? Label() + ".parallel"
                                            : std::string());
  std::vector<storage::NodeRange> parts =
      store_ != nullptr ? store_->Partition(pool_->NumThreads())
                        : storage::PartitionSubtrees(*doc_, pool_->NumThreads());
  partitions_used_ = parts.size();
  std::vector<std::vector<nestedlist::NestedList>> results(parts.size());
  std::vector<uint64_t> scanned(parts.size(), 0);
  std::vector<uint64_t> work(parts.size(), 0);
  std::vector<uint64_t> vcmp(parts.size(), 0);
  // Per-partition cache probe (main thread): hit partitions replay their
  // stored matches; only the misses go to the pool. Partition ranges are a
  // pure function of (document, thread count), so a warm run at the same
  // thread count hits every key, and any hit replays exactly what a cold
  // scan of that range produced — concatenation stays byte-identical.
  std::vector<std::shared_ptr<const CachedNokScan>> hits(parts.size());
  std::vector<size_t> missing;
  if (CacheEligible()) {
    util::TraceSpan span("cache", "result.lookup");
    for (size_t i = 0; i < parts.size(); ++i) {
      hits[i] = cache_->Get(NokCacheKey{doc_->generation(), canonical_nok_,
                                        parts[i].begin, parts[i].end});
      if (hits[i] == nullptr) missing.push_back(i);
    }
  } else {
    missing.resize(parts.size());
    for (size_t i = 0; i < parts.size(); ++i) missing[i] = i;
  }
  pool_->ParallelFor(
      missing.size(),
      [&](size_t mi) {
        size_t i = missing[mi];
        util::TraceSpan part_span(
            "exec", util::Tracer::Get().enabled()
                        ? "partition[" + std::to_string(i) + "] nodes [" +
                              std::to_string(parts[i].begin) + "," +
                              std::to_string(parts[i].end) + "]"
                        : std::string());
        // A private matcher per partition: constraint checks are read-only
        // on the shared document, and counters stay thread-local. One
        // partition runs entirely on one worker, so the thread-local
        // value-comparison delta below is exactly this partition's
        // comparisons.
        NokMatcher m(doc_, tree_, nok_);
        m.set_guard(guard_);
        // Private I/O cursor per partition: block pins and read counts stay
        // local to this worker, so the aggregate equals the sum of
        // partition read counts at every thread count and interleaving.
        storage::ScanCursor io;
        if (exec_.vectorize) {
          ScanRange(&m, parts[i].begin, parts[i].end, &io, &scanned[i],
                    &vcmp[i], &results[i]);
        } else {
          uint64_t cmp_before = ValueComparisonCount();
          nestedlist::NestedList nl;
          for (xml::NodeId x = parts[i].begin; x <= parts[i].end; ++x) {
            // Batch-boundary guard sample: a cheap tripped probe per node
            // plus a full check every ~512 nodes.
            if (guard_ != nullptr &&
                (guard_->Tripped() ||
                 ((scanned[i] & 0x1FF) == 0x1FF && !guard_->Check()))) {
              break;
            }
            ++scanned[i];
            if (store_ != nullptr) store_->Get(x, &io);
            if (!m.RootTest(x)) continue;
            if (m.MatchAt(x, &nl)) {
              results[i].push_back(std::move(nl));
              nl = nestedlist::NestedList();
            }
          }
          vcmp[i] = ValueComparisonCount() - cmp_before;
        }
        work[i] = m.MatchWork();
      },
      guard_);
  // Fill the cache for every partition scanned cold (complete scans only;
  // FillCache refuses after a trip).
  if (CacheEligible()) {
    for (size_t i : missing) {
      FillCache(NokCacheKey{doc_->generation(), canonical_nok_,
                            parts[i].begin, parts[i].end},
                results[i]);
    }
  }
  parallel_buf_.clear();
  // Deterministic merge point (DESIGN.md §8): per-partition counters fold
  // in partition order, matching the result concatenation. Hit partitions
  // contribute no scan work — they replay a deep copy of their entry.
  for (size_t i = 0; i < parts.size(); ++i) {
    nodes_scanned_ += scanned[i];
    parallel_work_ += work[i];
    value_cmps_ += vcmp[i];
    if (hits[i] != nullptr) {
      parallel_buf_.insert(parallel_buf_.end(), hits[i]->matches.begin(),
                           hits[i]->matches.end());
    } else {
      parallel_buf_.insert(parallel_buf_.end(),
                           std::make_move_iterator(results[i].begin()),
                           std::make_move_iterator(results[i].end()));
    }
  }
  parallel_pos_ = 0;
  parallel_done_ = true;
}

bool NokScanOperator::GetNext(nestedlist::NestedList* out) {
  ScopedTimer timer(&wall_nanos_);
  util::TraceSpan span("exec", TraceName(*this));
  return GetNextImpl(out);
}

size_t NokScanOperator::GetNextBatch(Batch* out, size_t max_rows) {
  // One timer + trace span for the whole batch: the per-row bookkeeping
  // that dominated the node-at-a-time hot path amortizes across max_rows.
  ScopedTimer timer(&wall_nanos_);
  util::TraceSpan span("exec", TraceName(*this));
  out->rows.clear();
  max_rows = ClampBatchRows(max_rows);
  nestedlist::NestedList nl;
  while (out->rows.size() < max_rows && GetNextImpl(&nl)) {
    out->rows.push_back(std::move(nl));
    nl = nestedlist::NestedList();
  }
  return out->rows.size();
}

bool NokScanOperator::GetNextImpl(nestedlist::NestedList* out) {
  if (virtual_root_) {
    if (CacheEligible()) {
      if (!parallel_done_) RunVirtualCachedScan();
      return HandOutBuffered(out);
    }
    if (virtual_done_) return false;
    virtual_done_ = true;
    ++nodes_scanned_;
    uint64_t cmp_before = ValueComparisonCount();
    bool matched = matcher_.MatchAt(kVirtualRootNode, out);
    value_cmps_ += ValueComparisonCount() - cmp_before;
    if (matched) {
      ++matches_emitted_;
      cells_emitted_ += CountCells(*out);
    }
    return matched;
  }
  if (ParallelEligible()) {
    if (!parallel_done_) RunParallelScan();
    return HandOutBuffered(out);
  }
  if (CacheEligible()) {
    if (!parallel_done_) RunSerialCachedScan();
    return HandOutBuffered(out);
  }
  if (exec_.vectorize) {
    // Chunked serial driver: scan one chunk at a time into the pending
    // buffer, hand matches out one per call. Emission order and charge
    // sequence are identical to the reference loop below — charges happen
    // only on handed-out matches, in the same document order.
    while (pending_pos_ >= pending_.size()) {
      pending_.clear();
      pending_pos_ = 0;
      if (cursor_ > range_end_ ||
          static_cast<size_t>(cursor_) >= doc_->NumNodes()) {
        return false;
      }
      xml::NodeId chunk_end = range_end_;
      if (chunk_end - cursor_ >= kScanChunk) {
        chunk_end = cursor_ + static_cast<xml::NodeId>(kScanChunk) - 1;
      }
      bool ok = ScanRange(&matcher_, cursor_, chunk_end, &io_cursor_,
                          &nodes_scanned_, &value_cmps_, &pending_);
      cursor_ = chunk_end + 1;
      if (!ok) return false;
    }
    *out = std::move(pending_[pending_pos_++]);
    if (guard_ != nullptr && guard_->Tripped()) return false;
    return ChargeAndCount(*out);
  }
  // Reference node-at-a-time loop (exec.vectorize == false): the pinned
  // baseline the equivalence suite compares the chunked driver against.
  while (cursor_ <= range_end_ &&
         static_cast<size_t>(cursor_) < doc_->NumNodes()) {
    if (guard_ != nullptr &&
        (guard_->Tripped() ||
         ((nodes_scanned_ & 0x1FF) == 0x1FF && !guard_->Check()))) {
      return false;
    }
    xml::NodeId x = cursor_++;
    ++nodes_scanned_;
    if (store_ != nullptr) store_->Get(x, &io_cursor_);
    uint64_t cmp_before = ValueComparisonCount();
    bool matched = matcher_.RootTest(x) && matcher_.MatchAt(x, out);
    value_cmps_ += ValueComparisonCount() - cmp_before;
    if (matched) {
      if (guard_ != nullptr && guard_->Tripped()) return false;
      return ChargeAndCount(*out);
    }
  }
  return false;
}

ExecStats NokScanOperator::Stats() const {
  ExecStats s;
  s.wall_nanos = wall_nanos_;
  s.nodes_scanned = nodes_scanned_;
  s.comparisons = MatchWork() + value_cmps_;
  s.matches = matches_emitted_;
  s.nl_cells = cells_emitted_;
  return s;
}

void NokScanOperator::Rewind() {
  cursor_ = range_begin_;
  virtual_done_ = false;
  // Parallel buffers hand entries out by move, so a rewound parallel scan
  // recomputes — mirroring the serial driver, which also rescans.
  parallel_done_ = false;
  parallel_buf_.clear();
  parallel_pos_ = 0;
  pending_.clear();
  pending_pos_ = 0;
  io_cursor_ = storage::ScanCursor();
}

}  // namespace exec
}  // namespace blossomtree
