#ifndef BLOSSOMTREE_EXEC_BATCH_H_
#define BLOSSOMTREE_EXEC_BATCH_H_

#include <cstddef>
#include <vector>

#include "nestedlist/nested_list.h"

namespace blossomtree {
namespace exec {

/// \brief Fixed-capacity unit of exchange between batch-at-a-time
/// operators (DESIGN.md §16). A producer clears `rows` and refills it on
/// each GetNextBatch call; ownership of the rows passes to the consumer,
/// which may move them out. Reusing one Batch across calls amortizes the
/// vector allocation the way the Volcano path reused one NestedList.
struct Batch {
  std::vector<nestedlist::NestedList> rows;

  bool empty() const { return rows.empty(); }
  size_t size() const { return rows.size(); }
  void clear() { rows.clear(); }
};

/// \brief Execution-core knobs, plumbed planner→operators through
/// `opt::PlanOptions::exec`. `vectorize=false` pins the node-at-a-time
/// reference path the batch_exec_test equivalence suite compares against;
/// `simd=false` keeps the batched structure but routes every kernel
/// through the portable scalar fallback. Results and the deterministic
/// counter surface are identical across all four combinations
/// (DESIGN.md §16).
struct ExecOptions {
  /// Rows per exchanged batch, clamped to [1, 4096] by operators. A
  /// NestedList row is a few pointers, so the default 64 rows lands in
  /// the tentpole's 1–4 KB per-batch target.
  size_t batch_rows = 64;
  /// Batch-at-a-time operator internals + kernel candidate prefilters.
  bool vectorize = true;
  /// Allow the compiled SIMD kernel backend; false forces the scalar
  /// fallback (same effect as BLOSSOMTREE_FORCE_SCALAR_KERNELS=1).
  bool simd = true;
};

/// \brief Effective per-batch row budget: the knob clamped to [1, 4096].
inline size_t ClampBatchRows(size_t batch_rows) {
  if (batch_rows < 1) return 1;
  if (batch_rows > 4096) return 4096;
  return batch_rows;
}

}  // namespace exec
}  // namespace blossomtree

#endif  // BLOSSOMTREE_EXEC_BATCH_H_
