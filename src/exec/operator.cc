#include "exec/operator.h"

#include <cstdio>

namespace blossomtree {
namespace exec {

std::vector<nestedlist::NestedList> Drain(NestedListOperator* op) {
  std::vector<nestedlist::NestedList> out;
  Batch batch;
  while (op->GetNextBatch(&batch, ClampBatchRows(ExecOptions{}.batch_rows)) >
         0) {
    out.insert(out.end(), std::make_move_iterator(batch.rows.begin()),
               std::make_move_iterator(batch.rows.end()));
  }
  return out;
}

namespace {

/// One rendered plan row: everything left of the actuals, and the actuals.
struct ExplainLine {
  std::string prefix;
  std::string actual;
};

void CollectExplainLines(const NestedListOperator& op, int depth,
                         std::vector<ExplainLine>* lines) {
  ExplainLine line;
  line.prefix.assign(static_cast<size_t>(depth) * 2, ' ');
  line.prefix += op.Label();
  double est = op.estimated_rows();
  if (est >= 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", est);
    line.prefix += "  (est rows=";
    line.prefix += buf;
    line.prefix += ")";
  }
  line.actual = op.Stats().Summary();
  lines->push_back(std::move(line));
  for (size_t i = 0; i < op.NumChildren(); ++i) {
    CollectExplainLines(*op.Child(i), depth + 1, lines);
  }
}

}  // namespace

std::string ExplainAnalyzeTree(const NestedListOperator& op, int depth) {
  // Two passes so the "(actual: ...)" column lines up across the whole
  // tree — long labels and 7+-digit counters no longer shear the layout.
  std::vector<ExplainLine> lines;
  CollectExplainLines(op, depth, &lines);
  size_t width = 0;
  for (const ExplainLine& l : lines) {
    width = width > l.prefix.size() ? width : l.prefix.size();
  }
  std::string out;
  for (ExplainLine& l : lines) {
    l.prefix.append(width - l.prefix.size() + 2, ' ');
    out += l.prefix + "(actual: " + l.actual + ")\n";
  }
  return out;
}

}  // namespace exec
}  // namespace blossomtree
