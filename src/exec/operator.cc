#include "exec/operator.h"

namespace blossomtree {
namespace exec {

std::vector<nestedlist::NestedList> Drain(NestedListOperator* op) {
  std::vector<nestedlist::NestedList> out;
  nestedlist::NestedList nl;
  while (op->GetNext(&nl)) {
    out.push_back(std::move(nl));
    nl = nestedlist::NestedList();
  }
  return out;
}

}  // namespace exec
}  // namespace blossomtree
