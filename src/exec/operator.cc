#include "exec/operator.h"

#include <cstdio>

namespace blossomtree {
namespace exec {

std::vector<nestedlist::NestedList> Drain(NestedListOperator* op) {
  std::vector<nestedlist::NestedList> out;
  nestedlist::NestedList nl;
  while (op->GetNext(&nl)) {
    out.push_back(std::move(nl));
    nl = nestedlist::NestedList();
  }
  return out;
}

std::string ExplainAnalyzeTree(const NestedListOperator& op, int depth) {
  std::string out(static_cast<size_t>(depth) * 2, ' ');
  out += op.Label();
  double est = op.estimated_rows();
  if (est >= 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", est);
    out += "  (est rows=";
    out += buf;
    out += ")";
  }
  out += "  (actual: ";
  out += op.Stats().Summary();
  out += ")\n";
  for (size_t i = 0; i < op.NumChildren(); ++i) {
    out += ExplainAnalyzeTree(*op.Child(i), depth + 1);
  }
  return out;
}

}  // namespace exec
}  // namespace blossomtree
