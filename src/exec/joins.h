#ifndef BLOSSOMTREE_EXEC_JOINS_H_
#define BLOSSOMTREE_EXEC_JOINS_H_

#include <functional>
#include <memory>
#include <vector>

#include "exec/batch.h"
#include "exec/nok_scan.h"
#include "exec/operator.h"
#include "util/resource_guard.h"

namespace blossomtree {
namespace exec {

/// \brief Pipelined //-join (paper §4.2 GetNext algorithm): merge-join of an
/// outer NestedList stream with an inner NoK stream, grafting each inner
/// match under the outer entry (at `from_slot`) whose subtree contains it.
///
/// Correct only when projections are document-order preserving, i.e. on
/// non-recursive documents (Theorem 2); the optimizer enforces that
/// precondition. No intermediate results are materialized.
class PipelinedDescJoin : public NestedListOperator {
 public:
  /// \param from_slot the outer slot the cut //-edge leaves from.
  /// \param mode f: outer entries without any inner match are pruned
  ///        (cascading); l: they are kept with an empty group.
  /// \param guard optional per-query resource guard, checked once per outer
  ///        tuple and charged for emitted cells (DESIGN.md §9).
  /// \param exec with `exec.vectorize` the merge step advances over the
  ///        buffered inner run with branch-free counting searches
  ///        (CountLessEq) instead of one branchy compare per entry — same
  ///        stream, same comparison counts.
  PipelinedDescJoin(const xml::Document* doc,
                    const pattern::BlossomTree* tree,
                    std::unique_ptr<NestedListOperator> outer,
                    std::unique_ptr<NestedListOperator> inner,
                    pattern::SlotId from_slot, pattern::EdgeMode mode,
                    util::ResourceGuard* guard = nullptr,
                    ExecOptions exec = {});

  const std::vector<pattern::SlotId>& top_slots() const override {
    return outer_->top_slots();
  }
  bool GetNext(nestedlist::NestedList* out) override;
  size_t GetNextBatch(Batch* out, size_t max_rows) override;
  void Rewind() override;
  void Restrict(xml::NodeId begin, xml::NodeId end) override {
    outer_->Restrict(begin, end);
    inner_->Restrict(begin, end);
  }

  /// \brief Peak number of buffered inner entries (the §4.2 memory-
  /// requirement metric: grows with document recursion).
  size_t PeakBuffered() const { return peak_buffered_; }

  const char* Name() const override { return "PipelinedDescJoin"; }
  ExecStats Stats() const override;
  size_t NumChildren() const override { return 2; }
  const NestedListOperator* Child(size_t i) const override {
    return i == 0 ? outer_.get() : inner_.get();
  }
  NestedListOperator* MutableChild(size_t i) override {
    return i == 0 ? outer_.get() : inner_.get();
  }

 private:
  bool GetNextImpl(nestedlist::NestedList* out);
  bool FetchInner();
  /// Merges buffered inner entries into `e`'s child group (the paper
  /// GetNext lines 7-9), fetching more inner as the buffer drains.
  void MergeInto(nestedlist::Entry* e);

  const xml::Document* doc_;
  const pattern::BlossomTree* tree_;
  std::unique_ptr<NestedListOperator> outer_;
  std::unique_ptr<NestedListOperator> inner_;
  pattern::SlotId from_slot_;
  pattern::SlotId inner_top_;
  size_t child_index_;
  pattern::EdgeMode mode_;
  util::ResourceGuard* guard_;
  ExecOptions exec_;

  /// Buffered inner run: entries [inner_head_, inner_buf_.size()) are
  /// live, with their region labels mirrored in inner_nodes_ so the merge
  /// can binary-search a flat sorted NodeId array (the vectorized
  /// containment test) without touching the entries.
  std::vector<nestedlist::Entry> inner_buf_;
  std::vector<xml::NodeId> inner_nodes_;
  size_t inner_head_ = 0;
  bool inner_done_ = false;
  size_t peak_buffered_ = 0;

  uint64_t matches_emitted_ = 0;
  uint64_t cells_emitted_ = 0;
  uint64_t merge_comparisons_ = 0;
  uint64_t wall_nanos_ = 0;
};

/// \brief Bounded nested-loop //-join (paper §4.3): for every outer entry,
/// re-scan the inner NoK restricted to the entry's subtree range (p1, p2].
/// Works on recursive documents (unlike the pipelined join) at the price of
/// repeated scans — NokScanOperator::NodesScanned exposes that cost.
class BoundedNestedLoopJoin : public NestedListOperator {
 public:
  /// \param bounded true: restrict each inner re-scan to the outer match's
  ///        subtree range (the paper's BNLJ); false: re-scan the whole
  ///        document per outer entry (the naive nested-loop strawman the
  ///        ablation bench compares against).
  /// \param guard optional per-query resource guard, checked once per outer
  ///        tuple (the inner re-scan is governed by the inner operator's
  ///        own guard) and charged for emitted cells.
  BoundedNestedLoopJoin(const xml::Document* doc,
                        const pattern::BlossomTree* tree,
                        std::unique_ptr<NestedListOperator> outer,
                        std::unique_ptr<NestedListOperator> inner,
                        pattern::SlotId from_slot, pattern::EdgeMode mode,
                        bool bounded = true,
                        util::ResourceGuard* guard = nullptr);

  const std::vector<pattern::SlotId>& top_slots() const override {
    return outer_->top_slots();
  }
  bool GetNext(nestedlist::NestedList* out) override;
  size_t GetNextBatch(Batch* out, size_t max_rows) override;
  void Rewind() override;
  void Restrict(xml::NodeId begin, xml::NodeId end) override {
    outer_->Restrict(begin, end);
  }

  /// \brief Number of inner re-scans performed (one per outer entry).
  uint64_t InnerRescans() const { return inner_rescans_; }

  const char* Name() const override {
    return bounded_ ? "BoundedNestedLoopJoin" : "NaiveNestedLoopJoin";
  }
  ExecStats Stats() const override;
  size_t NumChildren() const override { return 2; }
  const NestedListOperator* Child(size_t i) const override {
    return i == 0 ? outer_.get() : inner_.get();
  }
  NestedListOperator* MutableChild(size_t i) override {
    return i == 0 ? outer_.get() : inner_.get();
  }

 private:
  bool GetNextImpl(nestedlist::NestedList* out);

  const xml::Document* doc_;
  const pattern::BlossomTree* tree_;
  std::unique_ptr<NestedListOperator> outer_;
  std::unique_ptr<NestedListOperator> inner_;
  pattern::SlotId from_slot_;
  pattern::SlotId inner_top_;
  size_t child_index_;
  pattern::EdgeMode mode_;
  bool bounded_;
  util::ResourceGuard* guard_;
  uint64_t inner_rescans_ = 0;
  uint64_t matches_emitted_ = 0;
  uint64_t cells_emitted_ = 0;
  uint64_t wall_nanos_ = 0;
};

/// \brief Naive nested-loop join (paper §4.3) for the predicates that are
/// not order-preserving (`<<`, value joins, deep-equal): evaluates `pred`
/// on every pair from the two sequences and emits the Combined NestedList
/// for matching pairs (paper Example 4/5).
class NestedLoopJoin : public NestedListOperator {
 public:
  /// \param tops the combined top-slot context (usually the global tree's
  ///        top_slots()); both inputs must already be framed over it.
  /// \param owns_left owns_left[i] == true iff top group i comes from the
  ///        left input.
  /// \param pred predicate over a (left, right) pair.
  /// \param guard optional per-query resource guard, sampled every ~1k
  ///        predicate evaluations (this join is quadratic, so per-pair
  ///        clock samples would dominate) and charged for emitted cells.
  NestedLoopJoin(
      std::vector<pattern::SlotId> tops,
      std::unique_ptr<NestedListOperator> left,
      std::unique_ptr<NestedListOperator> right, std::vector<bool> owns_left,
      std::function<bool(const nestedlist::NestedList&,
                         const nestedlist::NestedList&)>
          pred,
      util::ResourceGuard* guard = nullptr);

  const std::vector<pattern::SlotId>& top_slots() const override {
    return tops_;
  }
  bool GetNext(nestedlist::NestedList* out) override;
  size_t GetNextBatch(Batch* out, size_t max_rows) override;
  void Rewind() override;

  const char* Name() const override { return "NestedLoopJoin"; }
  ExecStats Stats() const override;
  size_t NumChildren() const override { return 2; }
  const NestedListOperator* Child(size_t i) const override {
    return i == 0 ? left_.get() : right_.get();
  }
  NestedListOperator* MutableChild(size_t i) override {
    return i == 0 ? left_.get() : right_.get();
  }

 private:
  bool GetNextImpl(nestedlist::NestedList* out);

  std::vector<pattern::SlotId> tops_;
  std::unique_ptr<NestedListOperator> left_;
  std::unique_ptr<NestedListOperator> right_;
  std::vector<bool> owns_left_;
  std::function<bool(const nestedlist::NestedList&,
                     const nestedlist::NestedList&)>
      pred_;
  util::ResourceGuard* guard_;

  bool left_valid_ = false;
  nestedlist::NestedList cur_left_;
  std::vector<nestedlist::NestedList> right_mat_;
  bool right_materialized_ = false;
  size_t right_pos_ = 0;

  uint64_t pred_calls_ = 0;
  uint64_t value_cmps_ = 0;
  uint64_t matches_emitted_ = 0;
  uint64_t cells_emitted_ = 0;
  uint64_t wall_nanos_ = 0;
};

/// \brief Re-frames a NoK-local stream into a larger slot context: emitted
/// lists get `frame_tops` with the input's single top group placed at
/// `position` and placeholder entries elsewhere (paper §3.3's "initial
/// NestedList ... placeholders are filled out in the result").
class FrameOperator : public NestedListOperator {
 public:
  FrameOperator(const pattern::BlossomTree* tree,
                std::vector<pattern::SlotId> frame_tops, size_t position,
                std::unique_ptr<NestedListOperator> input);

  const std::vector<pattern::SlotId>& top_slots() const override {
    return frame_tops_;
  }
  bool GetNext(nestedlist::NestedList* out) override;
  void Rewind() override;

  const char* Name() const override { return "Frame"; }
  ExecStats Stats() const override;
  size_t NumChildren() const override { return 1; }
  const NestedListOperator* Child(size_t) const override {
    return input_.get();
  }
  NestedListOperator* MutableChild(size_t) override { return input_.get(); }

 private:
  const pattern::BlossomTree* tree_;
  std::vector<pattern::SlotId> frame_tops_;
  size_t position_;
  std::unique_ptr<NestedListOperator> input_;
  uint64_t matches_emitted_ = 0;
  uint64_t cells_emitted_ = 0;
  uint64_t wall_nanos_ = 0;
};

}  // namespace exec
}  // namespace blossomtree

#endif  // BLOSSOMTREE_EXEC_JOINS_H_
