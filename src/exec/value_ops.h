#ifndef BLOSSOMTREE_EXEC_VALUE_OPS_H_
#define BLOSSOMTREE_EXEC_VALUE_OPS_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "xml/document.h"
#include "xpath/ast.h"

namespace blossomtree {
namespace exec {

/// \brief Monotone per-thread count of CompareValues invocations. Operators
/// attribute comparisons to themselves by taking a before/after delta
/// around the work they drive on the current thread; parallel scans take
/// the delta inside each partition task (one partition runs entirely on one
/// worker), then merge the per-partition deltas in partition order — the
/// deterministic accumulation rule of DESIGN.md §8.
uint64_t ValueComparisonCount();

/// \brief Compares two atomized values with XPath semantics: numeric
/// comparison when both parse as numbers, string comparison otherwise.
bool CompareValues(std::string_view left, xpath::CompareOp op,
                   std::string_view right);

/// \brief XQuery general comparison over node sequences: true iff some pair
/// of items satisfies `op` on their string values (untyped-data semantics).
/// `left`/`right` are nodes of `doc`; literals are handled by the overload.
bool GeneralCompare(const xml::Document& doc,
                    std::span<const xml::NodeId> left,
                    xpath::CompareOp op,
                    std::span<const xml::NodeId> right);

/// \brief General comparison of a node sequence against a literal.
bool GeneralCompareLiteral(const xml::Document& doc,
                           std::span<const xml::NodeId> left,
                           xpath::CompareOp op, std::string_view literal);

/// \brief fn:deep-equal on two subtrees: same tag, same attribute set, and
/// pairwise deep-equal children; text compared exactly.
bool DeepEqualNodes(const xml::Document& doc, xml::NodeId a, xml::NodeId b);

/// \brief fn:deep-equal on two sequences (paper Example 2 relies on
/// deep-equal((), ()) = true): equal lengths and pairwise deep-equal items.
bool DeepEqualSequences(const xml::Document& doc,
                        std::span<const xml::NodeId> a,
                        std::span<const xml::NodeId> b);

}  // namespace exec
}  // namespace blossomtree

#endif  // BLOSSOMTREE_EXEC_VALUE_OPS_H_
