#ifndef BLOSSOMTREE_EXEC_KERNELS_H_
#define BLOSSOMTREE_EXEC_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "xml/document.h"

namespace blossomtree {
namespace exec {

/// \brief Data-parallel inner-loop kernels of the batch execution core
/// (DESIGN.md §16). Every kernel has a portable scalar reference and a
/// SIMD backend selected at build time; the two produce *identical*
/// results on identical inputs — kernels only filter/count, they never
/// touch an ExecStats counter, so the deterministic counter surface is
/// backend-independent by construction. The CI kernel-parity job runs the
/// equivalence suite under both (BLOSSOMTREE_FORCE_SCALAR_KERNELS=1
/// forces the scalar reference without a rebuild) and diffs the counter
/// dumps.

enum class KernelBackend { kScalar, kSse2, kNeon };

/// \brief Backend this binary was compiled with.
KernelBackend CompiledKernelBackend();

const char* KernelBackendName(KernelBackend b);

/// \brief True when BLOSSOMTREE_FORCE_SCALAR_KERNELS is set to a
/// non-empty, non-"0" value in the environment. Read once, cached.
bool ForceScalarKernels();

/// \brief Backend the kernels below actually run: the compiled backend,
/// unless the caller passed allow_simd=false or the environment forces
/// scalar.
KernelBackend EffectiveKernelBackend(bool allow_simd);

/// \brief Appends `base + i` for every i in [0, n) with tags[i] == target,
/// in ascending order. The stride-4 tag-id scan over a built document's
/// contiguous tag array.
void FilterTagEq(const xml::TagId* tags, size_t n, xml::TagId target,
                 xml::NodeId base, bool allow_simd,
                 std::vector<xml::NodeId>* out);

/// \brief Appends `base + i` for every i in [0, n) with
/// records[i].tag == target, in ascending order. The stride-16 tag-id
/// scan over a PackedNodeRecord stream (external documents, DiskStore
/// blocks). Uses unaligned loads only: BTSX2 sections are 16-byte
/// aligned, but heap/pread fallback buffers need not be.
void FilterTagEqRecords(const xml::PackedNodeRecord* records, size_t n,
                        xml::TagId target, xml::NodeId base, bool allow_simd,
                        std::vector<xml::NodeId>* out);

/// \brief Number of entries of ascending `sorted[0, n)` that are <= key —
/// a branch-free (conditional-move) upper-bound binary search. The
/// region-label containment primitive of the pipelined //-join and
/// structural-join merges: with start/end region labels, "how many
/// buffered inner nodes fall inside this outer's subtree" is exactly
/// CountLessEq(end) - CountLessEq(start).
size_t CountLessEq(const xml::NodeId* sorted, size_t n, xml::NodeId key);

}  // namespace exec
}  // namespace blossomtree

#endif  // BLOSSOMTREE_EXEC_KERNELS_H_
