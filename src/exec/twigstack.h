#ifndef BLOSSOMTREE_EXEC_TWIGSTACK_H_
#define BLOSSOMTREE_EXEC_TWIGSTACK_H_

#include <cstdint>
#include <vector>

#include "exec/exec_stats.h"
#include "pattern/blossom_tree.h"
#include "util/resource_guard.h"
#include "util/status.h"
#include "xml/document.h"

namespace blossomtree {
namespace exec {

/// \brief Statistics of one TwigStack execution.
struct TwigStackStats {
  uint64_t stream_elements = 0;   ///< Index entries consumed.
  uint64_t path_solutions = 0;    ///< Root-to-leaf solutions emitted.
  uint64_t merged_matches = 0;    ///< Partial-relation rows after merging.
  uint64_t value_cmps = 0;        ///< Value predicate comparisons.
  uint64_t wall_nanos = 0;        ///< Wall time of Run().
};

/// \brief Maps TwigStack counters onto the common ExecStats layout
/// (DESIGN.md §8): index entries = stream elements, comparisons = path
/// solutions expanded + value predicates, matches = merged result rows.
ExecStats ToExecStats(const TwigStackStats& s);

/// \brief Holistic twig join (Bruno/Koudas/Srivastava, the paper's
/// reference [7]): evaluates a single-pattern-tree BlossomTree over the
/// document's tag-name indexes, returning the distinct nodes matching
/// `result_vertex` in document order.
///
/// Supported patterns: one pattern tree; axes `/` and `//`; wildcard tags;
/// value constraints (applied as stream filters). TwigStack is I/O-optimal
/// when all edges are `//` (the paper's experimental setting); `/` edges
/// are checked during path-solution expansion and may make the enumeration
/// suboptimal, exactly as the original algorithm.
///
/// Returns kUnsupported for patterns outside that class (multiple trees,
/// positional predicates, following-sibling).
class TwigStack {
 public:
  /// \param guard optional per-query resource guard, sampled every ~512
  ///        consumed stream elements in the main loop; a tripped guard
  ///        makes Run return guard->status().
  TwigStack(const xml::Document* doc, const pattern::BlossomTree* tree,
            util::ResourceGuard* guard = nullptr);

  /// \brief Runs the join; fills `result` with the distinct document-order
  /// matches of `result_vertex`.
  Status Run(pattern::VertexId result_vertex,
             std::vector<xml::NodeId>* result);

  const TwigStackStats& stats() const { return stats_; }

 private:
  struct QNode {
    pattern::VertexId vertex;
    int parent = -1;                ///< Index into qnodes_.
    std::vector<int> children;
    bool parent_edge_is_child = false;  ///< '/' edge to parent.
    std::vector<xml::NodeId> stream;    ///< Filtered, doc-ordered matches.
    size_t cursor = 0;
    /// Stack of (node, index of top of parent stack at push time).
    std::vector<std::pair<xml::NodeId, int>> stack;
  };

  Status BuildQueryTree();
  void BuildStreams();
  xml::NodeId Head(const QNode& q) const;
  bool HeadEnded(const QNode& q) const { return q.cursor >= q.stream.size(); }
  int GetNextNode(int qi);
  void CleanStack(QNode* q, xml::NodeId until_start);
  void ExpandPathSolutions(int leaf_qi);
  void MergePhase(pattern::VertexId result_vertex,
                  std::vector<xml::NodeId>* result);

  const xml::Document* doc_;
  const pattern::BlossomTree* tree_;
  util::ResourceGuard* guard_;
  std::vector<QNode> qnodes_;  ///< qnodes_[0] is the query root.
  std::vector<int> leaves_;
  /// Path solutions per leaf: tuples aligned with the root-to-leaf vertex
  /// chain of that leaf.
  std::vector<std::vector<std::vector<xml::NodeId>>> leaf_solutions_;
  TwigStackStats stats_;
};

}  // namespace exec
}  // namespace blossomtree

#endif  // BLOSSOMTREE_EXEC_TWIGSTACK_H_
