#ifndef BLOSSOMTREE_EXEC_INDEX_SEEK_H_
#define BLOSSOMTREE_EXEC_INDEX_SEEK_H_

#include <vector>

#include "exec/nok_scan.h"
#include "exec/operator.h"
#include "storage/node_store.h"
#include "util/resource_guard.h"
#include "xml/document.h"

namespace blossomtree {
namespace exec {

/// \brief Index-driven NoK access path (DESIGN.md §14): instead of testing
/// the NoK at every document node, probe only the candidate NodeIds the
/// planner pulled from a StructuralIndex — a tag posting list, an exact
/// value-index equality run, or the empty set when the DataGuide proved the
/// NoK's mandatory paths absent.
///
/// Each candidate is re-verified with the full NokMatcher (RootTest +
/// MatchAt), so a candidate *superset* is always safe; the index layer
/// guarantees no candidate is missing. Candidates are in document order, so
/// the emitted stream is byte-identical to the sequential scan's — the
/// planner may swap access paths without changing any result.
///
/// Counters: every probed candidate counts as one `nodes_scanned` (the same
/// I/O proxy the scan reports, making seek-vs-scan reductions directly
/// comparable) and one `index_entries` (the seek's own work metric). All
/// probing happens on the consumer thread, so the counters are
/// deterministic at every thread count.
class IndexSeekOperator : public NestedListOperator {
 public:
  /// \param candidates NodeIds to probe, ascending document order; the
  ///        planner's access-path choice (empty = provably-empty NoK).
  /// \param guard optional per-query resource guard, sampled every ~512
  ///        probes and charged for every emitted NestedList cell.
  /// \param store optional paged store backing `doc`: probed candidates are
  ///        touched through it so residency counters see the seek's access
  ///        pattern.
  IndexSeekOperator(const xml::Document* doc,
                    const pattern::BlossomTree* tree,
                    const pattern::NokTree* nok,
                    std::vector<xml::NodeId> candidates,
                    util::ResourceGuard* guard = nullptr,
                    const storage::NodeStore* store = nullptr);

  const std::vector<pattern::SlotId>& top_slots() const override {
    return matcher_.top_slots();
  }

  bool GetNext(nestedlist::NestedList* out) override;
  size_t GetNextBatch(Batch* out, size_t max_rows) override;
  void Rewind() override;

  /// \brief Restricts probing to candidates in [begin, end] (the BNLJ
  /// inner-side push-down); a binary search skips the out-of-range prefix.
  void Restrict(xml::NodeId begin, xml::NodeId end) override;

  const char* Name() const override { return "IndexSeek"; }
  ExecStats Stats() const override;

  /// \brief Candidates probed so far — the seek's `nodes_scanned`.
  uint64_t NodesScanned() const { return probed_; }

  size_t NumCandidates() const { return candidates_.size(); }

 private:
  bool GetNextImpl(nestedlist::NestedList* out);

  const xml::Document* doc_;
  NokMatcher matcher_;
  std::vector<xml::NodeId> candidates_;
  size_t pos_ = 0;
  xml::NodeId range_begin_ = 0;
  xml::NodeId range_end_;

  uint64_t probed_ = 0;
  uint64_t matches_emitted_ = 0;
  uint64_t cells_emitted_ = 0;
  uint64_t value_cmps_ = 0;
  uint64_t wall_nanos_ = 0;

  util::ResourceGuard* guard_;
  const storage::NodeStore* store_;
  storage::ScanCursor io_cursor_;
};

}  // namespace exec
}  // namespace blossomtree

#endif  // BLOSSOMTREE_EXEC_INDEX_SEEK_H_
