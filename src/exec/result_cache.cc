#include "exec/result_cache.h"

#include "pattern/fingerprint.h"

namespace blossomtree {
namespace exec {

size_t NokCacheKeyHash::operator()(const NokCacheKey& k) const {
  uint64_t h = pattern::FingerprintHash(k.nok);
  h ^= k.doc_generation * 0x9E3779B97F4A7C15ull;
  h ^= (static_cast<uint64_t>(k.begin) << 32 | k.end) *
       0xC2B2AE3D27D4EB4Full;
  return static_cast<size_t>(h);
}

uint64_t CachedNokScanBytes(const NokCacheKey& key, const CachedNokScan& scan) {
  // The same per-cell footprint the ResourceGuard charges at handout, plus
  // per-list and key overheads; approximate by design (DESIGN.md §9).
  return scan.cells * sizeof(nestedlist::Entry) +
         scan.matches.size() * sizeof(nestedlist::NestedList) +
         key.nok.size() + 64;
}

}  // namespace exec
}  // namespace blossomtree
