#ifndef BLOSSOMTREE_EXEC_EXEC_STATS_H_
#define BLOSSOMTREE_EXEC_EXEC_STATS_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "nestedlist/nested_list.h"

namespace blossomtree {
namespace exec {

/// \brief Per-operator execution counters — the uniform measurement layer
/// every operator of the engine reports through (DESIGN.md §8).
///
/// All fields except `wall_nanos` are *deterministic*: for a fixed document
/// and query they are bitwise-identical at every thread count, because
/// thread-local per-partition counts are merged in partition order at the
/// same concatenation points that make the result streams byte-identical
/// (Theorem 1 / DESIGN.md §7). `wall_nanos` is a measurement, not a count,
/// and is excluded from `Counters()`.
struct ExecStats {
  uint64_t wall_nanos = 0;     ///< Inclusive operator time (incl. children).
  uint64_t nodes_scanned = 0;  ///< Document nodes fetched by scan drivers.
  uint64_t index_entries = 0;  ///< Tag-index entries consumed.
  uint64_t comparisons = 0;    ///< Constraint checks + value comparisons.
  uint64_t matches = 0;        ///< NestedLists emitted by GetNext.
  uint64_t nl_cells = 0;       ///< NestedList entries in emitted lists.
  uint64_t peak_buffer_bytes = 0;  ///< Peak buffered bytes (pipelined join).
  uint64_t rescans = 0;        ///< Inner-stream restarts (BNLJ).

  /// \brief Deterministic merge: counters sum; peaks take the max. Used at
  /// partition-concatenation points, where merge order is partition order.
  void MergeFrom(const ExecStats& o) {
    wall_nanos += o.wall_nanos;
    nodes_scanned += o.nodes_scanned;
    index_entries += o.index_entries;
    comparisons += o.comparisons;
    matches += o.matches;
    nl_cells += o.nl_cells;
    peak_buffer_bytes = peak_buffer_bytes > o.peak_buffer_bytes
                            ? peak_buffer_bytes
                            : o.peak_buffer_bytes;
    rescans += o.rescans;
  }

  /// \brief Renders only the deterministic counters (no wall time) — the
  /// string the cross-thread-count identity tests compare bitwise.
  std::string Counters() const;

  /// \brief Human-readable one-line summary including wall time, for the
  /// EXPLAIN ANALYZE renderer.
  std::string Summary() const;
};

/// \brief Counts the entries (cells) of a NestedList, recursively — the
/// paper's memory metric for materialized intermediate results.
uint64_t CountCells(const nestedlist::NestedList& list);

/// \brief Accumulates wall time into a sink for the enclosing scope.
class ScopedTimer {
 public:
  explicit ScopedTimer(uint64_t* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    *sink_ += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  uint64_t* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace exec
}  // namespace blossomtree

#endif  // BLOSSOMTREE_EXEC_EXEC_STATS_H_
