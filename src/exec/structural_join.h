#ifndef BLOSSOMTREE_EXEC_STRUCTURAL_JOIN_H_
#define BLOSSOMTREE_EXEC_STRUCTURAL_JOIN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/resource_guard.h"
#include "util/thread_pool.h"
#include "xml/document.h"

namespace blossomtree {
namespace exec {

/// \brief One (ancestor, descendant) pair produced by a structural join.
struct AncDescPair {
  xml::NodeId ancestor;
  xml::NodeId descendant;
};

/// \brief Counters for one or more structural-join invocations (DESIGN.md
/// §8). `entries_consumed` is defined as the sizes of the two *input* lists
/// — not merge iterations, which would differ between the serial pass and
/// chunked mode (chunks skip descendants outside their ancestor span).
/// `pairs_emitted` counts per chunk and sums in chunk order, before any
/// global dedup. Both are therefore identical at every thread count;
/// `chunks` is scheduling-dependent and excluded from determinism checks.
struct StructuralJoinStats {
  uint64_t entries_consumed = 0;
  uint64_t pairs_emitted = 0;
  uint64_t chunks = 0;

  void MergeFrom(const StructuralJoinStats& o) {
    entries_consumed += o.entries_consumed;
    pairs_emitted += o.pairs_emitted;
    chunks += o.chunks;
  }
};

/// All join forms below accept an optional thread pool. With a pool, the
/// join partitions the *outer (ancestor) sibling list*: the sorted ancestor
/// list decomposes into a forest of top-level sibling spans (cut wherever an
/// ancestor starts past every earlier ancestor's subtree), consecutive spans
/// are grouped into balanced chunks, each chunk joins its span's descendant
/// slice independently, and outputs concatenate in chunk order. Chunk spans
/// are disjoint and ascending, and a descendant's full ancestor stack lives
/// in exactly one chunk, so the output is bitwise-identical to the serial
/// merge (same document order, same stack order). pool == nullptr runs the
/// exact serial single-pass merge.

/// \brief Stack-based structural merge join (Al-Khalifa et al., the paper's
/// reference [2]): joins two document-ordered element lists on the
/// ancestor-descendant relationship in one pass, using a stack of nested
/// ancestors. O(|anc| + |desc| + |output|).
std::vector<AncDescPair> StackStructuralJoin(
    const xml::Document& doc, std::span<const xml::NodeId> ancestors,
    std::span<const xml::NodeId> descendants,
    util::ThreadPool* pool = nullptr,
    StructuralJoinStats* stats = nullptr,
    util::ResourceGuard* guard = nullptr);

/// \brief Parent-child variant: keeps only pairs with level(desc) ==
/// level(anc) + 1.
std::vector<AncDescPair> StackStructuralJoinParentChild(
    const xml::Document& doc, std::span<const xml::NodeId> ancestors,
    std::span<const xml::NodeId> descendants,
    util::ThreadPool* pool = nullptr,
    StructuralJoinStats* stats = nullptr,
    util::ResourceGuard* guard = nullptr);

/// \brief Semi-join forms used by existential predicates: the descendants
/// that have some ancestor in `ancestors` (document order preserved), and
/// the ancestors that contain some descendant.
std::vector<xml::NodeId> DescendantsWithAncestor(
    const xml::Document& doc, std::span<const xml::NodeId> ancestors,
    std::span<const xml::NodeId> descendants,
    util::ThreadPool* pool = nullptr,
    StructuralJoinStats* stats = nullptr,
    util::ResourceGuard* guard = nullptr);
std::vector<xml::NodeId> AncestorsWithDescendant(
    const xml::Document& doc, std::span<const xml::NodeId> ancestors,
    std::span<const xml::NodeId> descendants,
    util::ThreadPool* pool = nullptr,
    StructuralJoinStats* stats = nullptr,
    util::ResourceGuard* guard = nullptr);

/// \brief Parent-child semi-join variants (level-filtered).
std::vector<xml::NodeId> ChildrenWithParent(
    const xml::Document& doc, std::span<const xml::NodeId> parents,
    std::span<const xml::NodeId> children,
    util::ThreadPool* pool = nullptr,
    StructuralJoinStats* stats = nullptr,
    util::ResourceGuard* guard = nullptr);
std::vector<xml::NodeId> ParentsWithChild(
    const xml::Document& doc, std::span<const xml::NodeId> parents,
    std::span<const xml::NodeId> children,
    util::ThreadPool* pool = nullptr,
    StructuralJoinStats* stats = nullptr,
    util::ResourceGuard* guard = nullptr);

}  // namespace exec
}  // namespace blossomtree

#endif  // BLOSSOMTREE_EXEC_STRUCTURAL_JOIN_H_
