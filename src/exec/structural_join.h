#ifndef BLOSSOMTREE_EXEC_STRUCTURAL_JOIN_H_
#define BLOSSOMTREE_EXEC_STRUCTURAL_JOIN_H_

#include <cstdint>
#include <vector>

#include "xml/document.h"

namespace blossomtree {
namespace exec {

/// \brief One (ancestor, descendant) pair produced by a structural join.
struct AncDescPair {
  xml::NodeId ancestor;
  xml::NodeId descendant;
};

/// \brief Stack-based structural merge join (Al-Khalifa et al., the paper's
/// reference [2]): joins two document-ordered element lists on the
/// ancestor-descendant relationship in one pass, using a stack of nested
/// ancestors. O(|anc| + |desc| + |output|).
std::vector<AncDescPair> StackStructuralJoin(
    const xml::Document& doc, const std::vector<xml::NodeId>& ancestors,
    const std::vector<xml::NodeId>& descendants);

/// \brief Parent-child variant: keeps only pairs with level(desc) ==
/// level(anc) + 1.
std::vector<AncDescPair> StackStructuralJoinParentChild(
    const xml::Document& doc, const std::vector<xml::NodeId>& ancestors,
    const std::vector<xml::NodeId>& descendants);

/// \brief Semi-join forms used by existential predicates: the descendants
/// that have some ancestor in `ancestors` (document order preserved), and
/// the ancestors that contain some descendant.
std::vector<xml::NodeId> DescendantsWithAncestor(
    const xml::Document& doc, const std::vector<xml::NodeId>& ancestors,
    const std::vector<xml::NodeId>& descendants);
std::vector<xml::NodeId> AncestorsWithDescendant(
    const xml::Document& doc, const std::vector<xml::NodeId>& ancestors,
    const std::vector<xml::NodeId>& descendants);

/// \brief Parent-child semi-join variants (level-filtered).
std::vector<xml::NodeId> ChildrenWithParent(
    const xml::Document& doc, const std::vector<xml::NodeId>& parents,
    const std::vector<xml::NodeId>& children);
std::vector<xml::NodeId> ParentsWithChild(
    const xml::Document& doc, const std::vector<xml::NodeId>& parents,
    const std::vector<xml::NodeId>& children);

}  // namespace exec
}  // namespace blossomtree

#endif  // BLOSSOMTREE_EXEC_STRUCTURAL_JOIN_H_
