#include "exec/structural_join.h"

#include <algorithm>
#include <string>

#include "exec/kernels.h"
#include "util/trace.h"

namespace blossomtree {
namespace exec {

namespace {

/// Core merge over index sub-ranges of the two sorted input lists. For each
/// descendant, every stack entry is an ancestor (the stack holds the nested
/// chain of ancestors covering the current position), pushed outermost
/// first.
template <typename Emit>
void MergeRange(const xml::Document& doc,
                std::span<const xml::NodeId> ancestors, size_t abegin,
                size_t aend, std::span<const xml::NodeId> descendants,
                size_t dbegin, size_t dend, Emit&& emit,
                util::ResourceGuard* guard = nullptr) {
  std::vector<xml::NodeId> stack;
  size_t ai = abegin;
  for (size_t di = dbegin; di < dend; ++di) {
    // Batch-boundary guard sample (DESIGN.md §9), ~every 2k descendants:
    // a tripped guard abandons the rest of this range — the caller must
    // treat the output as garbage and consult guard->status().
    if (guard != nullptr && ((di - dbegin) & 0x7FF) == 0x7FF &&
        !guard->Check()) {
      return;
    }
    xml::NodeId d = descendants[di];
    // Pop ancestors whose subtree ended before d.
    while (!stack.empty() && doc.SubtreeEnd(stack.back()) < d) {
      stack.pop_back();
    }
    // Push ancestors that start before d; keep only those still covering d.
    while (ai < aend && ancestors[ai] < d) {
      while (!stack.empty() &&
             doc.SubtreeEnd(stack.back()) < ancestors[ai]) {
        stack.pop_back();
      }
      if (doc.SubtreeEnd(ancestors[ai]) >= d) {
        stack.push_back(ancestors[ai]);
      }
      ++ai;
    }
    for (xml::NodeId a : stack) {
      emit(a, d);
    }
    // Single-cover fast path: while exactly one ancestor covers the current
    // position and the next unpushed ancestor cannot start yet, every
    // following descendant up to the cover's subtree end emits exactly one
    // pair. One branch-free counting search (CountLessEq) sizes that run,
    // replacing the per-descendant pop/push/stack walk. The emitted pair
    // sequence is identical; the run is capped so the guard sample above
    // still fires every ~2k descendants.
    if (stack.size() == 1 && di + 1 < dend) {
      xml::NodeId limit = doc.SubtreeEnd(stack.back());
      if (ai < aend) limit = std::min(limit, ancestors[ai]);
      size_t run =
          CountLessEq(descendants.data() + di + 1, dend - di - 1, limit);
      run = std::min<size_t>(run, 0x800);
      for (size_t k = 1; k <= run; ++k) {
        emit(stack.back(), descendants[di + k]);
      }
      di += run;
    }
  }
}

/// One independent slice of the join: ancestors [anc_begin, anc_end) whose
/// subtrees are disjoint from every other chunk's, plus the descendant index
/// range falling inside their combined span.
struct ForestChunk {
  size_t anc_begin;
  size_t anc_end;
  size_t desc_begin;
  size_t desc_end;
};

/// Partitions the outer sibling list: the sorted ancestor list is cut
/// wherever an ancestor starts past the subtree end of everything before it
/// (a top-level sibling of the ancestor forest), and the resulting spans
/// are greedily grouped into at most `max_chunks` chunks balanced by input
/// size. Each descendant's covering ancestors then live in exactly one
/// chunk, making the chunks independently joinable.
std::vector<ForestChunk> ChunkOuterForest(
    const xml::Document& doc, std::span<const xml::NodeId> ancestors,
    std::span<const xml::NodeId> descendants, size_t max_chunks) {
  std::vector<ForestChunk> chunks;
  if (ancestors.empty()) return chunks;
  if (max_chunks <= 1) {
    chunks.push_back({0, ancestors.size(), 0, descendants.size()});
    return chunks;
  }
  // Forest roots: indices opening a new top-level sibling span.
  std::vector<size_t> roots;
  xml::NodeId max_end = 0;
  for (size_t i = 0; i < ancestors.size(); ++i) {
    if (i == 0 || ancestors[i] > max_end) roots.push_back(i);
    max_end = std::max(max_end, doc.SubtreeEnd(ancestors[i]));
  }
  size_t total = ancestors.size() + descendants.size();
  size_t target = (total + max_chunks - 1) / max_chunks;
  size_t abegin = 0;
  size_t dpos = 0;
  auto close_chunk = [&](size_t aend) {
    // Descendants covered by this chunk: inside [anc[abegin], span end].
    xml::NodeId span_end = 0;
    for (size_t i = abegin; i < aend; ++i) {
      span_end = std::max(span_end, doc.SubtreeEnd(ancestors[i]));
    }
    size_t dbegin = static_cast<size_t>(
        std::lower_bound(descendants.begin() + dpos, descendants.end(),
                         ancestors[abegin]) -
        descendants.begin());
    size_t dend = static_cast<size_t>(
        std::upper_bound(descendants.begin() + dbegin, descendants.end(),
                         span_end) -
        descendants.begin());
    chunks.push_back({abegin, aend, dbegin, dend});
    abegin = aend;
    dpos = dend;
  };
  for (size_t r = 1; r < roots.size(); ++r) {
    size_t weight = (roots[r] - abegin) +
                    descendants.size() / std::max<size_t>(roots.size(), 1);
    if (weight >= target && chunks.size() + 1 < max_chunks) {
      close_chunk(roots[r]);
    }
  }
  close_chunk(ancestors.size());
  return chunks;
}

/// Runs `make_emit(chunk_index)`-driven merges over the forest chunks —
/// in parallel on `pool` when available, serially otherwise. `make_emit`
/// must return an emit callable writing into chunk-private storage; it is
/// invoked for every chunk on the calling thread *before* any merge runs,
/// so it may safely size shared per-chunk containers.
template <typename MakeEmit>
void ForestJoin(const xml::Document& doc,
                std::span<const xml::NodeId> ancestors,
                std::span<const xml::NodeId> descendants,
                util::ThreadPool* pool, util::ResourceGuard* guard,
                size_t* num_chunks, MakeEmit&& make_emit) {
  size_t want = pool != nullptr ? pool->NumThreads() : 1;
  std::vector<ForestChunk> chunks =
      ChunkOuterForest(doc, ancestors, descendants, want);
  *num_chunks = chunks.size();
  using EmitT = decltype(make_emit(size_t{0}));
  std::vector<EmitT> emits;
  emits.reserve(chunks.size());
  for (size_t i = 0; i < chunks.size(); ++i) emits.push_back(make_emit(i));
  const bool traced = util::Tracer::Get().enabled();
  auto run = [&](size_t i) {
    util::TraceSpan span("join",
                         traced ? "merge.chunk[" + std::to_string(i) + "]"
                                : std::string());
    const ForestChunk& c = chunks[i];
    MergeRange(doc, ancestors, c.anc_begin, c.anc_end, descendants,
               c.desc_begin, c.desc_end, emits[i], guard);
  };
  if (pool != nullptr && chunks.size() > 1) {
    util::TraceSpan span("join", "merge.parallel");
    pool->ParallelFor(chunks.size(), run, guard);
  } else {
    util::TraceSpan span("join", "merge.serial");
    for (size_t i = 0; i < chunks.size(); ++i) {
      if (guard != nullptr && !guard->Check()) break;
      run(i);
    }
  }
}

/// Folds one invocation's counters into `stats` (nullptr-safe): input list
/// sizes, chunk count, and the per-chunk emit counts summed in chunk order
/// — call before Concat moves the parts away.
template <typename T>
void RecordJoinStats(StructuralJoinStats* stats, size_t anc, size_t desc,
                     size_t chunks,
                     const std::vector<std::vector<T>>& parts) {
  if (stats == nullptr) return;
  stats->entries_consumed += anc + desc;
  stats->chunks += chunks;
  for (const auto& p : parts) stats->pairs_emitted += p.size();
}

/// Concatenates chunk-private outputs in chunk order.
template <typename T>
std::vector<T> Concat(std::vector<std::vector<T>> parts) {
  if (parts.size() == 1) return std::move(parts[0]);
  std::vector<T> out;
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  out.reserve(total);
  for (auto& p : parts) {
    out.insert(out.end(), std::make_move_iterator(p.begin()),
               std::make_move_iterator(p.end()));
  }
  return out;
}

}  // namespace

std::vector<AncDescPair> StackStructuralJoin(
    const xml::Document& doc, std::span<const xml::NodeId> ancestors,
    std::span<const xml::NodeId> descendants, util::ThreadPool* pool,
    StructuralJoinStats* stats, util::ResourceGuard* guard) {
  size_t n = 0;
  std::vector<std::vector<AncDescPair>> parts;
  ForestJoin(doc, ancestors, descendants, pool, guard, &n, [&](size_t i) {
    if (parts.empty()) parts.resize(n);
    return [&parts, i](xml::NodeId a, xml::NodeId d) {
      parts[i].push_back({a, d});
    };
  });
  RecordJoinStats(stats, ancestors.size(), descendants.size(), n, parts);
  return Concat(std::move(parts));
}

std::vector<AncDescPair> StackStructuralJoinParentChild(
    const xml::Document& doc, std::span<const xml::NodeId> ancestors,
    std::span<const xml::NodeId> descendants, util::ThreadPool* pool,
    StructuralJoinStats* stats, util::ResourceGuard* guard) {
  size_t n = 0;
  std::vector<std::vector<AncDescPair>> parts;
  ForestJoin(doc, ancestors, descendants, pool, guard, &n, [&](size_t i) {
    if (parts.empty()) parts.resize(n);
    return [&parts, i, &doc](xml::NodeId a, xml::NodeId d) {
      if (doc.Level(d) == doc.Level(a) + 1) parts[i].push_back({a, d});
    };
  });
  RecordJoinStats(stats, ancestors.size(), descendants.size(), n, parts);
  return Concat(std::move(parts));
}

std::vector<xml::NodeId> DescendantsWithAncestor(
    const xml::Document& doc, std::span<const xml::NodeId> ancestors,
    std::span<const xml::NodeId> descendants, util::ThreadPool* pool,
    StructuralJoinStats* stats, util::ResourceGuard* guard) {
  size_t n = 0;
  std::vector<std::vector<xml::NodeId>> parts;
  // The `last` dedup is chunk-local; a descendant's pairs all emit in one
  // chunk, so no duplicate survives the concatenation.
  std::vector<xml::NodeId> last;
  ForestJoin(doc, ancestors, descendants, pool, guard, &n, [&](size_t i) {
    if (parts.empty()) {
      parts.resize(n);
      last.assign(n, xml::kNullNode);
    }
    return [&parts, &last, i](xml::NodeId, xml::NodeId d) {
      if (d != last[i]) {
        parts[i].push_back(d);
        last[i] = d;
      }
    };
  });
  RecordJoinStats(stats, ancestors.size(), descendants.size(), n, parts);
  return Concat(std::move(parts));
}

std::vector<xml::NodeId> AncestorsWithDescendant(
    const xml::Document& doc, std::span<const xml::NodeId> ancestors,
    std::span<const xml::NodeId> descendants, util::ThreadPool* pool,
    StructuralJoinStats* stats, util::ResourceGuard* guard) {
  size_t n = 0;
  std::vector<std::vector<xml::NodeId>> parts;
  ForestJoin(doc, ancestors, descendants, pool, guard, &n, [&](size_t i) {
    if (parts.empty()) parts.resize(n);
    return [&parts, i](xml::NodeId a, xml::NodeId) {
      parts[i].push_back(a);
    };
  });
  RecordJoinStats(stats, ancestors.size(), descendants.size(), n, parts);
  std::vector<xml::NodeId> out = Concat(std::move(parts));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<xml::NodeId> ChildrenWithParent(
    const xml::Document& doc, std::span<const xml::NodeId> parents,
    std::span<const xml::NodeId> children, util::ThreadPool* pool,
    StructuralJoinStats* stats, util::ResourceGuard* guard) {
  size_t n = 0;
  std::vector<std::vector<xml::NodeId>> parts;
  std::vector<xml::NodeId> last;
  ForestJoin(doc, parents, children, pool, guard, &n, [&](size_t i) {
    if (parts.empty()) {
      parts.resize(n);
      last.assign(n, xml::kNullNode);
    }
    return [&parts, &last, i, &doc](xml::NodeId a, xml::NodeId d) {
      if (doc.Level(d) == doc.Level(a) + 1 && d != last[i]) {
        parts[i].push_back(d);
        last[i] = d;
      }
    };
  });
  RecordJoinStats(stats, parents.size(), children.size(), n, parts);
  return Concat(std::move(parts));
}

std::vector<xml::NodeId> ParentsWithChild(
    const xml::Document& doc, std::span<const xml::NodeId> parents,
    std::span<const xml::NodeId> children, util::ThreadPool* pool,
    StructuralJoinStats* stats, util::ResourceGuard* guard) {
  size_t n = 0;
  std::vector<std::vector<xml::NodeId>> parts;
  ForestJoin(doc, parents, children, pool, guard, &n, [&](size_t i) {
    if (parts.empty()) parts.resize(n);
    return [&parts, i, &doc](xml::NodeId a, xml::NodeId d) {
      if (doc.Level(d) == doc.Level(a) + 1) parts[i].push_back(a);
    };
  });
  RecordJoinStats(stats, parents.size(), children.size(), n, parts);
  std::vector<xml::NodeId> out = Concat(std::move(parts));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace exec
}  // namespace blossomtree
