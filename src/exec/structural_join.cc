#include "exec/structural_join.h"

#include <algorithm>

namespace blossomtree {
namespace exec {

namespace {

/// Core merge: both inputs sorted by NodeId (document order). For each
/// descendant, every stack entry is an ancestor (stack holds the nested
/// chain of ancestors covering the current position).
template <typename Emit>
void Merge(const xml::Document& doc, const std::vector<xml::NodeId>& ancestors,
           const std::vector<xml::NodeId>& descendants, Emit&& emit) {
  std::vector<xml::NodeId> stack;
  size_t ai = 0;
  for (xml::NodeId d : descendants) {
    // Pop ancestors whose subtree ended before d.
    while (!stack.empty() && doc.SubtreeEnd(stack.back()) < d) {
      stack.pop_back();
    }
    // Push ancestors that start before d; keep only those still covering d.
    while (ai < ancestors.size() && ancestors[ai] < d) {
      while (!stack.empty() &&
             doc.SubtreeEnd(stack.back()) < ancestors[ai]) {
        stack.pop_back();
      }
      if (doc.SubtreeEnd(ancestors[ai]) >= d) {
        stack.push_back(ancestors[ai]);
      }
      ++ai;
    }
    for (xml::NodeId a : stack) {
      emit(a, d);
    }
  }
}

}  // namespace

std::vector<AncDescPair> StackStructuralJoin(
    const xml::Document& doc, const std::vector<xml::NodeId>& ancestors,
    const std::vector<xml::NodeId>& descendants) {
  std::vector<AncDescPair> out;
  Merge(doc, ancestors, descendants,
        [&](xml::NodeId a, xml::NodeId d) { out.push_back({a, d}); });
  return out;
}

std::vector<AncDescPair> StackStructuralJoinParentChild(
    const xml::Document& doc, const std::vector<xml::NodeId>& ancestors,
    const std::vector<xml::NodeId>& descendants) {
  std::vector<AncDescPair> out;
  Merge(doc, ancestors, descendants, [&](xml::NodeId a, xml::NodeId d) {
    if (doc.Level(d) == doc.Level(a) + 1) out.push_back({a, d});
  });
  return out;
}

std::vector<xml::NodeId> DescendantsWithAncestor(
    const xml::Document& doc, const std::vector<xml::NodeId>& ancestors,
    const std::vector<xml::NodeId>& descendants) {
  std::vector<xml::NodeId> out;
  xml::NodeId last = xml::kNullNode;
  Merge(doc, ancestors, descendants, [&](xml::NodeId, xml::NodeId d) {
    if (d != last) {
      out.push_back(d);
      last = d;
    }
  });
  return out;
}

std::vector<xml::NodeId> AncestorsWithDescendant(
    const xml::Document& doc, const std::vector<xml::NodeId>& ancestors,
    const std::vector<xml::NodeId>& descendants) {
  std::vector<xml::NodeId> out;
  Merge(doc, ancestors, descendants,
        [&](xml::NodeId a, xml::NodeId) { out.push_back(a); });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<xml::NodeId> ChildrenWithParent(
    const xml::Document& doc, const std::vector<xml::NodeId>& parents,
    const std::vector<xml::NodeId>& children) {
  std::vector<xml::NodeId> out;
  xml::NodeId last = xml::kNullNode;
  Merge(doc, parents, children, [&](xml::NodeId a, xml::NodeId d) {
    if (doc.Level(d) == doc.Level(a) + 1 && d != last) {
      out.push_back(d);
      last = d;
    }
  });
  return out;
}

std::vector<xml::NodeId> ParentsWithChild(
    const xml::Document& doc, const std::vector<xml::NodeId>& parents,
    const std::vector<xml::NodeId>& children) {
  std::vector<xml::NodeId> out;
  Merge(doc, parents, children, [&](xml::NodeId a, xml::NodeId d) {
    if (doc.Level(d) == doc.Level(a) + 1) out.push_back(a);
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace exec
}  // namespace blossomtree
