#include "exec/joins.h"

#include <algorithm>
#include <iterator>

#include "exec/kernels.h"
#include "exec/value_ops.h"
#include "nestedlist/ops.h"

namespace blossomtree {
namespace exec {

using nestedlist::Entry;
using nestedlist::Group;
using nestedlist::NestedList;
using pattern::EdgeMode;
using pattern::SlotId;

PipelinedDescJoin::PipelinedDescJoin(const xml::Document* doc,
                                     const pattern::BlossomTree* tree,
                                     std::unique_ptr<NestedListOperator> outer,
                                     std::unique_ptr<NestedListOperator> inner,
                                     SlotId from_slot, EdgeMode mode,
                                     util::ResourceGuard* guard,
                                     ExecOptions exec)
    : doc_(doc),
      tree_(tree),
      outer_(std::move(outer)),
      inner_(std::move(inner)),
      from_slot_(from_slot),
      mode_(mode),
      guard_(guard),
      exec_(exec) {
  inner_top_ = inner_->top_slots()[0];
  child_index_ = nestedlist::ChildIndex(*tree, from_slot, inner_top_);
}

bool PipelinedDescJoin::FetchInner() {
  if (inner_done_) return false;
  // Only ever called with the live run empty: reclaim the consumed prefix
  // so the buffer never grows beyond one in-flight inner run (the §4.2
  // memory bound).
  if (inner_head_ > 0) {
    inner_buf_.clear();
    inner_nodes_.clear();
    inner_head_ = 0;
  }
  NestedList nl;
  if (!inner_->GetNext(&nl)) {
    inner_done_ = true;
    return false;
  }
  // Inner streams carry one top group (the NoK root's slot); each match is
  // one entry. Region labels are mirrored into the flat sorted NodeId
  // array the counting searches run over.
  for (Entry& e : nl.tops[0]) {
    inner_nodes_.push_back(e.node);
    inner_buf_.push_back(std::move(e));
  }
  peak_buffered_ = std::max(peak_buffered_, inner_buf_.size() - inner_head_);
  return true;
}

void PipelinedDescJoin::MergeInto(Entry* e) {
  xml::NodeId start = e->node;
  xml::NodeId end = doc_->SubtreeEnd(e->node);
  // Merge step (paper GetNext lines 7-9): discard inner matches that
  // precede this outer entry; on a non-recursive document they can
  // belong to no later outer entry either.
  if (exec_.vectorize) {
    // Branch-free containment: the live run is sorted by NodeId, so "drop
    // everything <= start, graft everything <= end, stop at the first
    // entry beyond" are two counting binary searches per refill instead
    // of a compare-and-branch per entry. merge_comparisons_ ticks once
    // per entry disposition — identical to the scalar loop's ticks.
    while (true) {
      size_t avail = inner_buf_.size() - inner_head_;
      if (avail == 0) {
        if (!inner_done_ && FetchInner()) continue;
        if (inner_buf_.size() == inner_head_) break;
        continue;
      }
      size_t npop =
          CountLessEq(inner_nodes_.data() + inner_head_, avail, start);
      merge_comparisons_ += npop;
      inner_head_ += npop;
      if (npop == avail) continue;  // Run drained by stale entries: refill.
      avail -= npop;
      size_t ngraft =
          CountLessEq(inner_nodes_.data() + inner_head_, avail, end);
      merge_comparisons_ += ngraft;
      Group& dst = e->groups[child_index_];
      dst.insert(dst.end(),
                 std::make_move_iterator(inner_buf_.begin() + inner_head_),
                 std::make_move_iterator(inner_buf_.begin() + inner_head_ +
                                         ngraft));
      inner_head_ += ngraft;
      if (ngraft == avail) continue;  // More of the region may follow.
      ++merge_comparisons_;           // The probe that found n > end.
      break;
    }
    return;
  }
  // Scalar reference merge: one examined front, one tick, one branch.
  while (true) {
    while (inner_head_ >= inner_buf_.size() && !inner_done_) FetchInner();
    if (inner_head_ >= inner_buf_.size()) break;
    ++merge_comparisons_;
    xml::NodeId n = inner_nodes_[inner_head_];
    if (n <= start) {
      ++inner_head_;
      continue;
    }
    if (n > end) break;
    e->groups[child_index_].push_back(std::move(inner_buf_[inner_head_]));
    ++inner_head_;
  }
}

bool PipelinedDescJoin::GetNext(NestedList* out) {
  ScopedTimer timer(&wall_nanos_);
  util::TraceSpan span("exec", TraceName(*this));
  return GetNextImpl(out);
}

size_t PipelinedDescJoin::GetNextBatch(Batch* out, size_t max_rows) {
  ScopedTimer timer(&wall_nanos_);
  util::TraceSpan span("exec", TraceName(*this));
  out->rows.clear();
  max_rows = ClampBatchRows(max_rows);
  NestedList nl;
  while (out->rows.size() < max_rows && GetNextImpl(&nl)) {
    out->rows.push_back(std::move(nl));
    nl = NestedList();
  }
  return out->rows.size();
}

bool PipelinedDescJoin::GetNextImpl(NestedList* out) {
  NestedList m;
  while (outer_->GetNext(&m)) {
    // Batch boundary (DESIGN.md §9): one guard check per outer tuple — the
    // children sample their own guards inside longer stretches of work.
    if (guard_ != nullptr && !guard_->Check()) return false;
    nestedlist::ForEachEntryMutable(*tree_, outer_->top_slots(), &m,
                                    from_slot_, [&](Entry* e) {
                                      if (e->IsPlaceholder()) return;
                                      MergeInto(e);
                                    });
    bool valid = true;
    if (mode_ == EdgeMode::kFor) {
      valid = nestedlist::EnforceMandatory(*tree_, outer_->top_slots(), &m,
                                           from_slot_, child_index_);
    }
    if (valid) {
      *out = std::move(m);
      uint64_t cells = CountCells(*out);
      // Charge before counting: a budget trip on this row means the
      // consumer never received it, so matches/cells must not include it.
      if (guard_ != nullptr &&
          !guard_->ChargeCells(cells, cells * sizeof(Entry))) {
        return false;
      }
      ++matches_emitted_;
      cells_emitted_ += cells;
      return true;
    }
    m = NestedList();
  }
  return false;
}

ExecStats PipelinedDescJoin::Stats() const {
  ExecStats s;
  s.wall_nanos = wall_nanos_;
  s.comparisons = merge_comparisons_;
  s.matches = matches_emitted_;
  s.nl_cells = cells_emitted_;
  // The §4.2 memory requirement: peak inner entries buffered awaiting their
  // containing outer entry, costed at the fixed per-entry footprint.
  s.peak_buffer_bytes = peak_buffered_ * sizeof(Entry);
  return s;
}

void PipelinedDescJoin::Rewind() {
  outer_->Rewind();
  inner_->Rewind();
  inner_buf_.clear();
  inner_nodes_.clear();
  inner_head_ = 0;
  inner_done_ = false;
}

BoundedNestedLoopJoin::BoundedNestedLoopJoin(
    const xml::Document* doc, const pattern::BlossomTree* tree,
    std::unique_ptr<NestedListOperator> outer,
    std::unique_ptr<NestedListOperator> inner, SlotId from_slot, EdgeMode mode,
    bool bounded, util::ResourceGuard* guard)
    : doc_(doc),
      tree_(tree),
      outer_(std::move(outer)),
      inner_(std::move(inner)),
      from_slot_(from_slot),
      mode_(mode),
      bounded_(bounded),
      guard_(guard) {
  inner_top_ = inner_->top_slots()[0];
  child_index_ = nestedlist::ChildIndex(*tree, from_slot, inner_top_);
}

bool BoundedNestedLoopJoin::GetNext(NestedList* out) {
  ScopedTimer timer(&wall_nanos_);
  util::TraceSpan span("exec", TraceName(*this));
  return GetNextImpl(out);
}

size_t BoundedNestedLoopJoin::GetNextBatch(Batch* out, size_t max_rows) {
  ScopedTimer timer(&wall_nanos_);
  util::TraceSpan span("exec", TraceName(*this));
  out->rows.clear();
  max_rows = ClampBatchRows(max_rows);
  NestedList nl;
  while (out->rows.size() < max_rows && GetNextImpl(&nl)) {
    out->rows.push_back(std::move(nl));
    nl = NestedList();
  }
  return out->rows.size();
}

bool BoundedNestedLoopJoin::GetNextImpl(NestedList* out) {
  NestedList m;
  while (outer_->GetNext(&m)) {
    // One check per outer tuple; each inner re-scan below is a governed
    // NokScan that samples the guard itself, so even the naive variant's
    // whole-document re-scans observe a trip within ~512 nodes.
    if (guard_ != nullptr && !guard_->Check()) return false;
    nestedlist::ForEachEntryMutable(
        *tree_, outer_->top_slots(), &m, from_slot_, [&](Entry* e) {
          if (e->IsPlaceholder()) return;
          xml::NodeId end = doc_->SubtreeEnd(e->node);
          if (end == e->node) return;  // Leaf: no descendants.
          // The piggybacked (p1, p2] range of §4.3: the inner NoK scans
          // only within this outer match's subtree. The unbounded variant
          // re-scans everything and filters, as a naive nested loop would.
          if (bounded_) {
            inner_->Restrict(e->node + 1, end);
          }
          inner_->Rewind();
          ++inner_rescans_;
          NestedList nl;
          while (inner_->GetNext(&nl)) {
            for (Entry& ie : nl.tops[0]) {
              if (!bounded_ &&
                  !(ie.node > e->node && ie.node <= end)) {
                continue;
              }
              e->groups[child_index_].push_back(std::move(ie));
            }
            nl = NestedList();
          }
        });
    bool valid = true;
    if (mode_ == EdgeMode::kFor) {
      valid = nestedlist::EnforceMandatory(*tree_, outer_->top_slots(), &m,
                                           from_slot_, child_index_);
    }
    if (valid) {
      *out = std::move(m);
      uint64_t cells = CountCells(*out);
      // Charge before counting (see PipelinedDescJoin::GetNextImpl).
      if (guard_ != nullptr &&
          !guard_->ChargeCells(cells, cells * sizeof(Entry))) {
        return false;
      }
      ++matches_emitted_;
      cells_emitted_ += cells;
      return true;
    }
    m = NestedList();
  }
  return false;
}

ExecStats BoundedNestedLoopJoin::Stats() const {
  ExecStats s;
  s.wall_nanos = wall_nanos_;
  s.matches = matches_emitted_;
  s.nl_cells = cells_emitted_;
  s.rescans = inner_rescans_;
  return s;
}

void BoundedNestedLoopJoin::Rewind() { outer_->Rewind(); }

NestedLoopJoin::NestedLoopJoin(
    std::vector<SlotId> tops, std::unique_ptr<NestedListOperator> left,
    std::unique_ptr<NestedListOperator> right, std::vector<bool> owns_left,
    std::function<bool(const NestedList&, const NestedList&)> pred,
    util::ResourceGuard* guard)
    : tops_(std::move(tops)),
      left_(std::move(left)),
      right_(std::move(right)),
      owns_left_(std::move(owns_left)),
      pred_(std::move(pred)),
      guard_(guard) {}

bool NestedLoopJoin::GetNext(NestedList* out) {
  ScopedTimer timer(&wall_nanos_);
  util::TraceSpan span("exec", TraceName(*this));
  return GetNextImpl(out);
}

size_t NestedLoopJoin::GetNextBatch(Batch* out, size_t max_rows) {
  ScopedTimer timer(&wall_nanos_);
  util::TraceSpan span("exec", TraceName(*this));
  out->rows.clear();
  max_rows = ClampBatchRows(max_rows);
  NestedList nl;
  while (out->rows.size() < max_rows && GetNextImpl(&nl)) {
    out->rows.push_back(std::move(nl));
    nl = NestedList();
  }
  return out->rows.size();
}

bool NestedLoopJoin::GetNextImpl(NestedList* out) {
  if (!right_materialized_) {
    right_mat_ = Drain(right_.get());
    right_materialized_ = true;
  }
  while (true) {
    if (!left_valid_) {
      if (!left_->GetNext(&cur_left_)) return false;
      left_valid_ = true;
      right_pos_ = 0;
    }
    while (right_pos_ < right_mat_.size()) {
      // This join is quadratic: sample the clock every ~1k predicate
      // evaluations, with a cheap tripped probe in between.
      if (guard_ != nullptr &&
          (guard_->Tripped() ||
           ((pred_calls_ & 0x3FF) == 0x3FF && !guard_->Check()))) {
        return false;
      }
      const NestedList& r = right_mat_[right_pos_++];
      // Value comparisons inside the predicate (general compares,
      // deep-equal prefilters) run on this thread: attribute the
      // thread-local delta here (DESIGN.md §8).
      uint64_t cmp_before = ValueComparisonCount();
      ++pred_calls_;
      bool hit = pred_(cur_left_, r);
      value_cmps_ += ValueComparisonCount() - cmp_before;
      if (hit) {
        *out = nestedlist::Combine(cur_left_, r, owns_left_);
        uint64_t cells = CountCells(*out);
        // Charge before counting (see PipelinedDescJoin::GetNextImpl).
        if (guard_ != nullptr &&
            !guard_->ChargeCells(cells, cells * sizeof(Entry))) {
          return false;
        }
        ++matches_emitted_;
        cells_emitted_ += cells;
        return true;
      }
    }
    left_valid_ = false;
  }
}

ExecStats NestedLoopJoin::Stats() const {
  ExecStats s;
  s.wall_nanos = wall_nanos_;
  s.comparisons = pred_calls_ + value_cmps_;
  s.matches = matches_emitted_;
  s.nl_cells = cells_emitted_;
  return s;
}

void NestedLoopJoin::Rewind() {
  left_->Rewind();
  left_valid_ = false;
  right_pos_ = 0;
}

FrameOperator::FrameOperator(const pattern::BlossomTree* tree,
                             std::vector<SlotId> frame_tops, size_t position,
                             std::unique_ptr<NestedListOperator> input)
    : tree_(tree),
      frame_tops_(std::move(frame_tops)),
      position_(position),
      input_(std::move(input)) {}

bool FrameOperator::GetNext(NestedList* out) {
  ScopedTimer timer(&wall_nanos_);
  util::TraceSpan span("exec", TraceName(*this));
  NestedList in;
  if (!input_->GetNext(&in)) return false;
  out->tops.clear();
  out->tops.reserve(frame_tops_.size());
  for (size_t i = 0; i < frame_tops_.size(); ++i) {
    if (i == position_) {
      out->tops.push_back(std::move(in.tops[0]));
    } else {
      Group g;
      g.push_back(nestedlist::MakePlaceholderEntry(*tree_, frame_tops_[i]));
      out->tops.push_back(std::move(g));
    }
  }
  ++matches_emitted_;
  cells_emitted_ += CountCells(*out);
  return true;
}

ExecStats FrameOperator::Stats() const {
  ExecStats s;
  s.wall_nanos = wall_nanos_;
  s.matches = matches_emitted_;
  s.nl_cells = cells_emitted_;
  return s;
}

void FrameOperator::Rewind() { input_->Rewind(); }

}  // namespace exec
}  // namespace blossomtree
