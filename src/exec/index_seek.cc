#include "exec/index_seek.h"

#include <algorithm>

#include "exec/value_ops.h"

namespace blossomtree {
namespace exec {

IndexSeekOperator::IndexSeekOperator(const xml::Document* doc,
                                     const pattern::BlossomTree* tree,
                                     const pattern::NokTree* nok,
                                     std::vector<xml::NodeId> candidates,
                                     util::ResourceGuard* guard,
                                     const storage::NodeStore* store)
    : doc_(doc),
      matcher_(doc, tree, nok),
      candidates_(std::move(candidates)),
      range_end_(doc->NumNodes() == 0
                     ? 0
                     : static_cast<xml::NodeId>(doc->NumNodes() - 1)),
      guard_(guard),
      store_(store) {
  if (guard_ != nullptr) matcher_.set_guard(guard_);
}

bool IndexSeekOperator::GetNext(nestedlist::NestedList* out) {
  ScopedTimer timer(&wall_nanos_);
  util::TraceSpan span("exec", TraceName(*this));
  return GetNextImpl(out);
}

size_t IndexSeekOperator::GetNextBatch(Batch* out, size_t max_rows) {
  ScopedTimer timer(&wall_nanos_);
  util::TraceSpan span("exec", TraceName(*this));
  out->rows.clear();
  max_rows = ClampBatchRows(max_rows);
  nestedlist::NestedList nl;
  while (out->rows.size() < max_rows && GetNextImpl(&nl)) {
    out->rows.push_back(std::move(nl));
    nl = nestedlist::NestedList();
  }
  return out->rows.size();
}

bool IndexSeekOperator::GetNextImpl(nestedlist::NestedList* out) {
  while (pos_ < candidates_.size() && candidates_[pos_] <= range_end_) {
    if (guard_ != nullptr &&
        (guard_->Tripped() ||
         ((probed_ & 0x1FF) == 0x1FF && !guard_->Check()))) {
      return false;
    }
    xml::NodeId x = candidates_[pos_++];
    ++probed_;
    if (store_ != nullptr) store_->Get(x, &io_cursor_);
    uint64_t cmp_before = ValueComparisonCount();
    bool matched = matcher_.RootTest(x) && matcher_.MatchAt(x, out);
    value_cmps_ += ValueComparisonCount() - cmp_before;
    if (matched) {
      if (guard_ != nullptr && guard_->Tripped()) return false;
      uint64_t cells = CountCells(*out);
      // Charge before counting: a budget trip on this row means the
      // consumer never received it, so matches/cells must not include it.
      if (guard_ != nullptr &&
          !guard_->ChargeCells(cells, cells * sizeof(nestedlist::Entry))) {
        return false;
      }
      ++matches_emitted_;
      cells_emitted_ += cells;
      return true;
    }
  }
  return false;
}

void IndexSeekOperator::Rewind() {
  pos_ = static_cast<size_t>(
      std::lower_bound(candidates_.begin(), candidates_.end(), range_begin_) -
      candidates_.begin());
  io_cursor_ = storage::ScanCursor();
}

void IndexSeekOperator::Restrict(xml::NodeId begin, xml::NodeId end) {
  range_begin_ = begin;
  range_end_ = end;
}

ExecStats IndexSeekOperator::Stats() const {
  ExecStats s;
  s.wall_nanos = wall_nanos_;
  s.nodes_scanned = probed_;
  s.index_entries = probed_;
  s.comparisons = matcher_.MatchWork() + value_cmps_;
  s.matches = matches_emitted_;
  s.nl_cells = cells_emitted_;
  return s;
}

}  // namespace exec
}  // namespace blossomtree
