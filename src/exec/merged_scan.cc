#include "exec/merged_scan.h"

#include "exec/kernels.h"
#include "exec/value_ops.h"

namespace blossomtree {
namespace exec {

MergedNokScan::MergedNokScan(const xml::Document* doc,
                             const pattern::BlossomTree* tree,
                             std::vector<const pattern::NokTree*> noks,
                             util::ResourceGuard* guard, ExecOptions exec)
    : doc_(doc), guard_(guard), exec_(exec) {
  for (const pattern::NokTree* nok : noks) {
    matchers_.push_back(std::make_unique<NokMatcher>(doc, tree, nok));
    matchers_.back()->set_guard(guard);
    const pattern::Vertex& root = tree->vertex(nok->root);
    virtual_root_.push_back(root.IsVirtualRoot());
    match_any_.push_back(root.MatchesAnyTag() || root.IsVirtualRoot());
    root_tag_.push_back(root.tag);
  }
  results_.resize(matchers_.size());
}

void MergedNokScan::Run() {
  if (ran_) return;
  ran_ = true;
  ScopedTimer timer(&wall_nanos_);
  util::TraceSpan span("exec", "MergedNokScan.run");
  uint64_t cmp_before = ValueComparisonCount();
  // Virtual-root NoKs fire once, before the node scan.
  for (size_t i = 0; i < matchers_.size(); ++i) {
    if (!virtual_root_[i]) continue;
    nestedlist::NestedList nl;
    if (matchers_[i]->MatchAt(kVirtualRootNode, &nl)) {
      results_[i].push_back(std::move(nl));
    }
  }
  // Dispatch table: which matchers can start at a given tag. Match-any
  // roots ("*", and defensively any other non-concrete root tag such as
  // "~") are probed on every element (the NFA's always-active states);
  // concrete roots only fire on their own tag. Dispatching a match-any
  // root through tags().Lookup() would resolve to kNullTag and silently
  // drop the NoK, so anything non-concrete goes to the wildcard set —
  // probe() re-applies RootTest, so over-dispatch is safe, under-dispatch
  // is not.
  std::vector<std::vector<size_t>> by_tag(doc_->tags().size());
  std::vector<size_t> wildcard;
  for (size_t i = 0; i < matchers_.size(); ++i) {
    if (virtual_root_[i]) continue;
    if (match_any_[i]) {
      wildcard.push_back(i);
      continue;
    }
    xml::TagId t = doc_->tags().Lookup(root_tag_[i]);
    if (t != xml::kNullTag) by_tag[t].push_back(i);
  }
  // One shared pass: each node is fetched once, the NoKs whose root can
  // match it are probed.
  auto probe = [&](size_t i, xml::NodeId x) {
    if (!matchers_[i]->RootTest(x)) return;
    nestedlist::NestedList nl;
    if (matchers_[i]->MatchAt(x, &nl)) {
      results_[i].push_back(std::move(nl));
    }
  };
  if (exec_.vectorize && wildcard.empty()) {
    // All roots concrete: one SIMD candidate sweep per distinct root tag
    // replaces the per-node dispatch loop. Per-NoK result vectors are
    // filled in ascending NodeId (each sweep's candidates ascend) and the
    // probes re-verify every candidate, so streams and untripped-run
    // counters match the per-node pass bitwise — the only nodes it spends
    // counted work on are exactly these tag-equal candidates.
    nodes_scanned_ += doc_->NumNodes();
    std::vector<xml::NodeId> candidates;
    uint64_t probed = 0;
    bool tripped = false;
    for (xml::TagId t = 0; t < by_tag.size() && !tripped; ++t) {
      if (by_tag[t].empty()) continue;
      candidates.clear();
      if (const xml::PackedNodeRecord* recs = doc_->ExternalRecords()) {
        FilterTagEqRecords(recs, doc_->NumNodes(), t, 0, exec_.simd,
                           &candidates);
      } else {
        FilterTagEq(doc_->TagArray(), doc_->NumNodes(), t, 0, exec_.simd,
                    &candidates);
      }
      for (xml::NodeId x : candidates) {
        if (guard_ != nullptr &&
            (guard_->Tripped() ||
             ((probed & 0x1FF) == 0x1FF && !guard_->Check()))) {
          tripped = true;
          break;
        }
        ++probed;
        for (size_t i : by_tag[t]) probe(i, x);
      }
    }
  } else {
    for (xml::NodeId x = 0; x < doc_->NumNodes(); ++x) {
      // Batch-boundary guard sample (DESIGN.md §9): cheap probe per node,
      // full clock check every ~512 nodes.
      if (guard_ != nullptr &&
          (guard_->Tripped() ||
           ((nodes_scanned_ & 0x1FF) == 0x1FF && !guard_->Check()))) {
        break;
      }
      ++nodes_scanned_;
      if (!doc_->IsElement(x)) continue;
      for (size_t i : by_tag[doc_->Tag(x)]) probe(i, x);
      for (size_t i : wildcard) probe(i, x);
    }
  }
  value_cmps_ += ValueComparisonCount() - cmp_before;
}

ExecStats MergedNokScan::ScanStats() const {
  ExecStats s;
  s.wall_nanos = wall_nanos_;
  s.nodes_scanned = nodes_scanned_;
  s.comparisons = MatchWork() + value_cmps_;
  for (const auto& lists : results_) {
    s.matches += lists.size();
    for (const auto& nl : lists) s.nl_cells += CountCells(nl);
  }
  return s;
}

uint64_t MergedNokScan::MatchWork() const {
  uint64_t total = 0;
  for (const auto& m : matchers_) total += m->MatchWork();
  return total;
}

std::unique_ptr<MaterializedOperator> MergedNokScan::MakeOperator(size_t i) {
  return std::make_unique<MaterializedOperator>(
      matchers_[i]->top_slots(), results_[i]);
}

}  // namespace exec
}  // namespace blossomtree
