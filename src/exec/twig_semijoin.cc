#include "exec/twig_semijoin.h"

#include "exec/structural_join.h"
#include "exec/value_ops.h"
#include "util/trace.h"

namespace blossomtree {
namespace exec {

using pattern::VertexId;

ExecStats ToExecStats(const TwigSemijoinStats& s) {
  ExecStats out;
  out.wall_nanos = s.wall_nanos;
  out.index_entries = s.candidates_loaded;
  out.comparisons = s.join.entries_consumed + s.value_cmps;
  out.matches = s.join.pairs_emitted;
  return out;
}

TwigSemijoin::TwigSemijoin(const xml::Document* doc,
                           const pattern::BlossomTree* tree,
                           util::ThreadPool* pool,
                           util::ResourceGuard* guard)
    : doc_(doc), tree_(tree), pool_(pool), guard_(guard) {}

Status TwigSemijoin::GuardOk() const {
  if (guard_ == nullptr) return Status::OK();
  if (guard_->Check()) return Status::OK();
  return guard_->status();
}

Status TwigSemijoin::Validate(VertexId v) const {
  const pattern::Vertex& vx = tree_->vertex(v);
  if (!vx.IsVirtualRoot()) {
    if (vx.axis == xpath::Axis::kFollowingSibling ||
        vx.axis == xpath::Axis::kAttribute ||
        (!vx.tag.empty() && vx.tag[0] == '@')) {
      return Status::Unsupported("semijoin supports only / and // axes");
    }
    if (vx.position > 0) {
      return Status::Unsupported("semijoin cannot apply positions");
    }
  }
  for (VertexId c : vx.children) {
    BT_RETURN_NOT_OK(Validate(c));
  }
  return Status::OK();
}

std::vector<xml::NodeId> TwigSemijoin::Candidates(VertexId v) {
  const pattern::Vertex& vx = tree_->vertex(v);
  std::vector<xml::NodeId> out;
  if (vx.MatchesAnyTag()) {
    for (xml::NodeId n = 0; n < doc_->NumNodes(); ++n) {
      if (doc_->IsElement(n)) out.push_back(n);
    }
  } else {
    xml::TagId t = doc_->tags().Lookup(vx.tag);
    auto index = doc_->TagIndex(t);
    out.assign(index.begin(), index.end());
  }
  // The edge from the virtual root: '/' pins the document root element.
  if (vx.parent != pattern::kNoVertex &&
      tree_->vertex(vx.parent).IsVirtualRoot() &&
      vx.axis == xpath::Axis::kChild) {
    std::vector<xml::NodeId> rooted;
    for (xml::NodeId n : out) {
      if (doc_->Level(n) == 0) rooted.push_back(n);
    }
    out = std::move(rooted);
  }
  if (vx.value) {
    std::vector<xml::NodeId> filtered;
    for (xml::NodeId n : out) {
      if (CompareValues(doc_->StringValue(n), vx.value->op,
                        vx.value->literal)) {
        filtered.push_back(n);
      }
    }
    out = std::move(filtered);
  }
  stats_.candidates_loaded += out.size();
  return out;
}

Status TwigSemijoin::BottomUp(VertexId v) {
  // Batch boundary (DESIGN.md §9): one guard check per candidate load /
  // per-edge semijoin; the joins themselves sample the guard inside long
  // merges.
  BT_RETURN_NOT_OK(GuardOk());
  candidates_[v] = Candidates(v);
  for (VertexId c : tree_->vertex(v).children) {
    BT_RETURN_NOT_OK(BottomUp(c));
    const pattern::Vertex& cx = tree_->vertex(c);
    if (cx.mode == pattern::EdgeMode::kLet) continue;  // Optional edge.
    BT_RETURN_NOT_OK(GuardOk());
    ++stats_.semijoins;
    candidates_[v] =
        cx.axis == xpath::Axis::kChild
            ? ParentsWithChild(*doc_, candidates_[v], candidates_[c], pool_,
                               &stats_.join, guard_)
            : AncestorsWithDescendant(*doc_, candidates_[v], candidates_[c],
                                      pool_, &stats_.join, guard_);
  }
  return Status::OK();
}

void TwigSemijoin::TopDown(VertexId v) {
  for (VertexId c : tree_->vertex(v).children) {
    if (guard_ != nullptr && !guard_->Check()) return;
    const pattern::Vertex& cx = tree_->vertex(c);
    ++stats_.semijoins;
    candidates_[c] =
        cx.axis == xpath::Axis::kChild
            ? ChildrenWithParent(*doc_, candidates_[v], candidates_[c],
                                 pool_, &stats_.join, guard_)
            : DescendantsWithAncestor(*doc_, candidates_[v], candidates_[c],
                                      pool_, &stats_.join, guard_);
    TopDown(c);
  }
}

Status TwigSemijoin::Run(VertexId result_vertex,
                         std::vector<xml::NodeId>* result) {
  ScopedTimer timer(&stats_.wall_nanos);
  util::TraceSpan span("exec", "TwigSemijoin.run");
  // Candidate value filters run on this thread (the per-edge joins do no
  // value comparisons), so one delta around the whole run attributes them.
  uint64_t cmp_before = ValueComparisonCount();
  if (tree_->roots().size() != 1) {
    return Status::Unsupported("semijoin requires a single pattern tree");
  }
  VertexId root = tree_->roots()[0];
  if (!tree_->vertex(root).IsVirtualRoot()) {
    return Status::Unsupported("semijoin requires a '~'-anchored tree");
  }
  if (tree_->vertex(root).children.size() != 1) {
    return Status::Unsupported("semijoin requires a single query root");
  }
  VertexId qroot = tree_->vertex(root).children[0];
  BT_RETURN_NOT_OK(Validate(qroot));

  candidates_.assign(tree_->NumVertices(), {});
  // Bottom-up semijoins make every candidate extensible downward; the
  // top-down pass then removes candidates without a valid ancestor chain.
  // On tree patterns the two passes leave exactly the nodes participating
  // in at least one full embedding (acyclic-join dangling-tuple
  // elimination).
  BT_RETURN_NOT_OK(BottomUp(qroot));
  TopDown(qroot);
  stats_.value_cmps += ValueComparisonCount() - cmp_before;
  // A trip anywhere above leaves partial candidate lists: surface the
  // guard's status instead of a truncated result.
  if (guard_ != nullptr && guard_->Tripped()) return guard_->status();
  *result = candidates_[result_vertex];
  return Status::OK();
}

}  // namespace exec
}  // namespace blossomtree
