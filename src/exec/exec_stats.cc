#include "exec/exec_stats.h"

#include <cstdio>

namespace blossomtree {
namespace exec {

namespace {

void AppendCounter(std::string* out, const char* name, uint64_t v) {
  if (v == 0) return;
  if (!out->empty()) out->push_back(' ');
  out->append(name);
  out->push_back('=');
  out->append(std::to_string(v));
}

uint64_t CountEntryCells(const nestedlist::Entry& e) {
  uint64_t total = 1;
  for (const nestedlist::Group& g : e.groups) {
    for (const nestedlist::Entry& c : g) total += CountEntryCells(c);
  }
  return total;
}

}  // namespace

std::string ExecStats::Counters() const {
  std::string out;
  AppendCounter(&out, "nodes", nodes_scanned);
  AppendCounter(&out, "index", index_entries);
  AppendCounter(&out, "cmp", comparisons);
  AppendCounter(&out, "rows", matches);
  AppendCounter(&out, "cells", nl_cells);
  AppendCounter(&out, "peak_bytes", peak_buffer_bytes);
  AppendCounter(&out, "rescans", rescans);
  if (out.empty()) out = "rows=0";
  return out;
}

std::string ExecStats::Summary() const {
  char time_buf[32];
  std::snprintf(time_buf, sizeof(time_buf), "%.3f",
                static_cast<double>(wall_nanos) / 1e6);
  std::string out = Counters();
  out += " time=";
  out += time_buf;
  out += "ms";
  return out;
}

uint64_t CountCells(const nestedlist::NestedList& list) {
  uint64_t total = 0;
  for (const nestedlist::Group& g : list.tops) {
    for (const nestedlist::Entry& e : g) total += CountEntryCells(e);
  }
  return total;
}

}  // namespace exec
}  // namespace blossomtree
