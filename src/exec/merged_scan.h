#ifndef BLOSSOMTREE_EXEC_MERGED_SCAN_H_
#define BLOSSOMTREE_EXEC_MERGED_SCAN_H_

#include <memory>
#include <vector>

#include "exec/nok_scan.h"
#include "exec/operator.h"

namespace blossomtree {
namespace exec {

/// \brief A materialized NestedList stream (used as the per-NoK output view
/// of the merged scan, and generally handy for tests/plans).
class MaterializedOperator : public NestedListOperator {
 public:
  MaterializedOperator(std::vector<pattern::SlotId> tops,
                       std::vector<nestedlist::NestedList> lists)
      : tops_(std::move(tops)), lists_(std::move(lists)) {}

  const std::vector<pattern::SlotId>& top_slots() const override {
    return tops_;
  }
  bool GetNext(nestedlist::NestedList* out) override {
    ScopedTimer timer(&wall_nanos_);
    util::TraceSpan span("exec", TraceName(*this));
    if (pos_ >= lists_.size()) return false;
    *out = lists_[pos_++];
    ++matches_emitted_;
    cells_emitted_ += CountCells(*out);
    return true;
  }
  void Rewind() override { pos_ = 0; }

  const char* Name() const override { return "Materialized"; }
  ExecStats Stats() const override {
    ExecStats s = base_stats_;
    s.wall_nanos += wall_nanos_;
    s.matches += matches_emitted_;
    s.nl_cells += cells_emitted_;
    return s;
  }

  /// \brief Pre-paid stats of the producer that materialized this stream
  /// (e.g. a merged scan's per-NoK attribution), folded into Stats().
  void set_base_stats(const ExecStats& s) { base_stats_ = s; }

 private:
  std::vector<pattern::SlotId> tops_;
  std::vector<nestedlist::NestedList> lists_;
  size_t pos_ = 0;
  ExecStats base_stats_;
  uint64_t matches_emitted_ = 0;
  uint64_t cells_emitted_ = 0;
  uint64_t wall_nanos_ = 0;
};

/// \brief Merged NoK evaluation (paper §4.2 "merging NoK operators"): runs
/// several NoK pattern matchers over ONE sequential scan of the document —
/// the DFA→NFA-style frontier merging that reduces k scans to one whenever
/// multiple NoK operators read the same document.
///
/// Usage: construct with the NoKs, call Run() once, then take per-NoK
/// operator views with MakeOperator(i).
class MergedNokScan {
 public:
  /// \param guard optional per-query resource guard; the shared pass
  ///        samples it every ~512 nodes and stops scanning once tripped
  ///        (the partial materialization is then discarded by the caller,
  ///        which must check guard->status()).
  /// \param exec batch/vectorization knobs: with `exec.vectorize` and only
  ///        concrete root tags, the pass runs one SIMD candidate sweep per
  ///        distinct root tag instead of the per-node dispatch loop — same
  ///        per-NoK streams and counters (probes re-verify every
  ///        candidate). Any wildcard root falls back to the per-node pass.
  MergedNokScan(const xml::Document* doc, const pattern::BlossomTree* tree,
                std::vector<const pattern::NokTree*> noks,
                util::ResourceGuard* guard = nullptr, ExecOptions exec = {});

  /// \brief Performs the single scan, materializing every NoK's matches.
  void Run();

  /// \brief Nodes scanned by the single shared pass (compare with
  /// k * NumNodes for k separate scans — the ablation bench's metric).
  uint64_t NodesScanned() const { return nodes_scanned_; }

  /// \brief Matcher work (constraint checks), which is *not* shared.
  uint64_t MatchWork() const;

  size_t NumNoks() const { return matchers_.size(); }

  /// \brief Stream view over NoK i's matches (valid after Run()).
  std::unique_ptr<MaterializedOperator> MakeOperator(size_t i);

  /// \brief Counters of the one shared pass (DESIGN.md §8): the scan cost
  /// is reported once here, not multiplied into the per-NoK views.
  ExecStats ScanStats() const;

 private:
  const xml::Document* doc_;
  util::ResourceGuard* guard_;
  ExecOptions exec_;
  std::vector<std::unique_ptr<NokMatcher>> matchers_;
  std::vector<bool> virtual_root_;
  std::vector<bool> match_any_;
  std::vector<std::string> root_tag_;
  std::vector<std::vector<nestedlist::NestedList>> results_;
  uint64_t nodes_scanned_ = 0;
  uint64_t value_cmps_ = 0;
  uint64_t wall_nanos_ = 0;
  bool ran_ = false;
};

}  // namespace exec
}  // namespace blossomtree

#endif  // BLOSSOMTREE_EXEC_MERGED_SCAN_H_
