#include "exec/twigstack.h"

#include <algorithm>
#include <limits>
#include <map>

#include "exec/value_ops.h"
#include "util/trace.h"

namespace blossomtree {
namespace exec {

using pattern::VertexId;

namespace {
constexpr xml::NodeId kInf = std::numeric_limits<xml::NodeId>::max();
}  // namespace

TwigStack::TwigStack(const xml::Document* doc,
                     const pattern::BlossomTree* tree,
                     util::ResourceGuard* guard)
    : doc_(doc), tree_(tree), guard_(guard) {}

Status TwigStack::BuildQueryTree() {
  if (tree_->roots().size() != 1) {
    return Status::Unsupported("TwigStack requires a single pattern tree");
  }
  VertexId root = tree_->roots()[0];
  if (!tree_->vertex(root).IsVirtualRoot()) {
    return Status::Unsupported("TwigStack requires a '~'-anchored tree");
  }
  if (tree_->vertex(root).children.size() != 1) {
    return Status::Unsupported("TwigStack requires a single query root");
  }
  // DFS over the pattern tree building qnodes.
  struct Frame {
    VertexId v;
    int parent;
  };
  std::vector<Frame> work;
  work.push_back({tree_->vertex(root).children[0], -1});
  while (!work.empty()) {
    Frame f = work.back();
    work.pop_back();
    const pattern::Vertex& vx = tree_->vertex(f.v);
    if (vx.axis == xpath::Axis::kFollowingSibling ||
        vx.axis == xpath::Axis::kAttribute ||
        (!vx.tag.empty() && vx.tag[0] == '@')) {
      return Status::Unsupported("TwigStack supports only / and // axes");
    }
    if (vx.position > 0) {
      return Status::Unsupported("TwigStack cannot apply positional "
                                 "predicates");
    }
    QNode q;
    q.vertex = f.v;
    q.parent = f.parent;
    q.parent_edge_is_child =
        f.parent >= 0 && vx.axis == xpath::Axis::kChild;
    int qi = static_cast<int>(qnodes_.size());
    qnodes_.push_back(std::move(q));
    if (f.parent >= 0) qnodes_[f.parent].children.push_back(qi);
    for (VertexId c : tree_->vertex(f.v).children) {
      work.push_back({c, qi});
    }
  }
  for (size_t i = 0; i < qnodes_.size(); ++i) {
    if (qnodes_[i].children.empty()) leaves_.push_back(static_cast<int>(i));
  }
  leaf_solutions_.resize(qnodes_.size());
  return Status::OK();
}

void TwigStack::BuildStreams() {
  for (QNode& q : qnodes_) {
    const pattern::Vertex& vx = tree_->vertex(q.vertex);
    std::vector<xml::NodeId> nodes;
    if (vx.MatchesAnyTag()) {
      for (xml::NodeId n = 0; n < doc_->NumNodes(); ++n) {
        if (doc_->IsElement(n)) nodes.push_back(n);
      }
    } else {
      xml::TagId t = doc_->tags().Lookup(vx.tag);
      auto index = doc_->TagIndex(t);
      nodes.assign(index.begin(), index.end());
    }
    // The query root connected to "~" by '/' must be the document root.
    bool must_be_doc_root =
        q.parent < 0 && vx.axis == xpath::Axis::kChild;
    for (xml::NodeId n : nodes) {
      if (must_be_doc_root && doc_->Level(n) != 0) continue;
      if (vx.value && !CompareValues(doc_->StringValue(n), vx.value->op,
                                     vx.value->literal)) {
        continue;
      }
      q.stream.push_back(n);
    }
  }
}

xml::NodeId TwigStack::Head(const QNode& q) const {
  return HeadEnded(q) ? kInf : q.stream[q.cursor];
}

int TwigStack::GetNextNode(int qi) {
  QNode& q = qnodes_[qi];
  if (q.children.empty()) return qi;
  xml::NodeId min_start = kInf;
  xml::NodeId max_start = 0;
  int min_child = q.children[0];  // Falls back to an exhausted child, which
                                  // terminates the main loop.
  for (int ci : q.children) {
    int r = GetNextNode(ci);
    // Propagate a descendant that needs processing first — but not an
    // exhausted subtree: once a leaf stream under ci is dry, no *future*
    // q-match can complete a twig through it, yet leaves under other
    // children may still pair with already-stacked ancestors, so the scan
    // must go on (the q-subtree simply stops constraining the merge).
    if (r != ci && !HeadEnded(qnodes_[r])) return r;
    xml::NodeId h = Head(qnodes_[ci]);
    if (h < min_start) {
      min_start = h;
      min_child = ci;
    }
    if (h != kInf) max_start = std::max(max_start, h);
  }
  // Advance q past heads that cannot contain all live child heads.
  while (!HeadEnded(q) && doc_->SubtreeEnd(Head(q)) < max_start) {
    ++q.cursor;
    ++stats_.stream_elements;
  }
  if (Head(q) < min_start) return qi;
  return min_child;
}

void TwigStack::CleanStack(QNode* q, xml::NodeId until_start) {
  while (!q->stack.empty() &&
         doc_->SubtreeEnd(q->stack.back().first) < until_start) {
    q->stack.pop_back();
  }
}

void TwigStack::ExpandPathSolutions(int leaf_qi) {
  // Chain of qnode indices from root to leaf.
  std::vector<int> chain;
  for (int qi = leaf_qi; qi >= 0; qi = qnodes_[qi].parent) {
    chain.push_back(qi);
  }
  std::reverse(chain.begin(), chain.end());

  std::vector<xml::NodeId> tuple(chain.size());
  // Recursive expansion from the leaf's just-pushed entry upward; '/'
  // edges are verified by level difference (ancestorship is implied by the
  // stack invariant).
  auto rec = [&](auto&& self, size_t pos, int stack_index) -> void {
    const QNode& q = qnodes_[chain[pos]];
    tuple[pos] = q.stack[stack_index].first;
    if (pos == 0) {
      leaf_solutions_[leaf_qi].push_back(tuple);
      ++stats_.path_solutions;
      return;
    }
    int parent_limit = q.stack[stack_index].second;
    const QNode& p = qnodes_[chain[pos - 1]];
    for (int j = 0; j <= parent_limit; ++j) {
      if (q.parent_edge_is_child &&
          doc_->Level(tuple[pos]) != doc_->Level(p.stack[j].first) + 1) {
        continue;
      }
      self(self, pos - 1, j);
    }
  };
  rec(rec, chain.size() - 1,
      static_cast<int>(qnodes_[leaf_qi].stack.size()) - 1);
}

void TwigStack::MergePhase(VertexId result_vertex,
                           std::vector<xml::NodeId>* result) {
  // Staged hash join of the per-leaf path-solution relations on their
  // shared ancestor columns, projecting each stage to the columns still
  // needed (remaining leaves' paths + the result column).
  std::vector<std::vector<VertexId>> leaf_columns;
  for (int leaf : leaves_) {
    std::vector<VertexId> cols;
    std::vector<int> chain;
    for (int qi = leaf; qi >= 0; qi = qnodes_[qi].parent) chain.push_back(qi);
    std::reverse(chain.begin(), chain.end());
    for (int qi : chain) cols.push_back(qnodes_[qi].vertex);
    leaf_columns.push_back(std::move(cols));
  }

  // Project a relation to a column subset, deduplicating rows. Shrinking
  // both join inputs *before* the join keeps intermediate sizes bounded by
  // the distinct value combinations actually needed downstream (without
  // this, a branching query whose shared ancestor is the document root
  // joins all leaf pairs — quadratic blowup).
  auto project = [](std::vector<VertexId>* columns,
                    std::vector<std::vector<xml::NodeId>>* rel,
                    const std::vector<VertexId>& wanted) {
    std::vector<size_t> keep;
    std::vector<VertexId> kept_columns;
    for (size_t i = 0; i < columns->size(); ++i) {
      if (std::find(wanted.begin(), wanted.end(), (*columns)[i]) !=
          wanted.end()) {
        keep.push_back(i);
        kept_columns.push_back((*columns)[i]);
      }
    }
    if (keep.size() == columns->size()) {
      std::sort(rel->begin(), rel->end());
      rel->erase(std::unique(rel->begin(), rel->end()), rel->end());
      return;
    }
    std::vector<std::vector<xml::NodeId>> projected;
    projected.reserve(rel->size());
    for (const auto& row : *rel) {
      std::vector<xml::NodeId> out;
      out.reserve(keep.size());
      for (size_t k : keep) out.push_back(row[k]);
      projected.push_back(std::move(out));
    }
    std::sort(projected.begin(), projected.end());
    projected.erase(std::unique(projected.begin(), projected.end()),
                    projected.end());
    *columns = std::move(kept_columns);
    *rel = std::move(projected);
  };

  // Columns needed from stage li onward: leaves li.. plus the result.
  auto needed_from = [&](size_t li) {
    std::vector<VertexId> needed;
    for (size_t lj = li; lj < leaves_.size(); ++lj) {
      for (VertexId v : leaf_columns[lj]) {
        if (std::find(needed.begin(), needed.end(), v) == needed.end()) {
          needed.push_back(v);
        }
      }
    }
    if (std::find(needed.begin(), needed.end(), result_vertex) ==
        needed.end()) {
      needed.push_back(result_vertex);
    }
    return needed;
  };

  std::vector<VertexId> columns = leaf_columns[0];
  std::vector<std::vector<xml::NodeId>> rel = leaf_solutions_[leaves_[0]];
  project(&columns, &rel, needed_from(1));

  for (size_t li = 1; li < leaves_.size(); ++li) {
    std::vector<VertexId> lcols = leaf_columns[li];
    std::vector<std::vector<xml::NodeId>> lrel =
        leaf_solutions_[leaves_[li]];
    // Shrink the incoming leaf relation to what the join and the remaining
    // stages need: its shared columns with `columns` plus needed_from.
    std::vector<VertexId> wanted = needed_from(li + 1);
    for (VertexId v : columns) {
      if (std::find(wanted.begin(), wanted.end(), v) == wanted.end()) {
        wanted.push_back(v);
      }
    }
    project(&lcols, &lrel, wanted);

    // Common columns.
    std::vector<size_t> rel_key;   // Indices into columns.
    std::vector<size_t> leaf_key;  // Indices into lcols.
    for (size_t i = 0; i < columns.size(); ++i) {
      auto it = std::find(lcols.begin(), lcols.end(), columns[i]);
      if (it != lcols.end()) {
        rel_key.push_back(i);
        leaf_key.push_back(static_cast<size_t>(it - lcols.begin()));
      }
    }
    std::map<std::vector<xml::NodeId>, std::vector<size_t>> index;
    for (size_t r = 0; r < lrel.size(); ++r) {
      std::vector<xml::NodeId> key;
      for (size_t k : leaf_key) key.push_back(lrel[r][k]);
      index[key].push_back(r);
    }
    std::vector<VertexId> new_columns = columns;
    std::vector<size_t> extra;  // Indices into lcols appended.
    for (size_t i = 0; i < lcols.size(); ++i) {
      if (std::find(columns.begin(), columns.end(), lcols[i]) ==
          columns.end()) {
        new_columns.push_back(lcols[i]);
        extra.push_back(i);
      }
    }
    std::vector<std::vector<xml::NodeId>> joined;
    for (const auto& row : rel) {
      std::vector<xml::NodeId> key;
      for (size_t k : rel_key) key.push_back(row[k]);
      auto it = index.find(key);
      if (it == index.end()) continue;
      for (size_t r : it->second) {
        std::vector<xml::NodeId> out = row;
        for (size_t k : extra) out.push_back(lrel[r][k]);
        joined.push_back(std::move(out));
      }
    }
    columns = std::move(new_columns);
    rel = std::move(joined);
    project(&columns, &rel, needed_from(li + 1));
  }
  stats_.merged_matches = rel.size();

  // Extract the result column.
  auto it = std::find(columns.begin(), columns.end(), result_vertex);
  if (it == columns.end()) {
    return;  // Result vertex not bound by any leaf path (cannot happen for
             // well-formed queries: every vertex lies on some root-leaf
             // path).
  }
  size_t col = static_cast<size_t>(it - columns.begin());
  result->clear();
  for (const auto& row : rel) result->push_back(row[col]);
  std::sort(result->begin(), result->end());
  result->erase(std::unique(result->begin(), result->end()), result->end());
}

ExecStats ToExecStats(const TwigStackStats& s) {
  ExecStats out;
  out.wall_nanos = s.wall_nanos;
  out.index_entries = s.stream_elements;
  out.comparisons = s.path_solutions + s.value_cmps;
  out.matches = s.merged_matches;
  return out;
}

Status TwigStack::Run(VertexId result_vertex,
                      std::vector<xml::NodeId>* result) {
  ScopedTimer timer(&stats_.wall_nanos);
  util::TraceSpan span("exec", "TwigStack.run");
  // Stream value filters run serially on this thread: one delta attributes
  // them (DESIGN.md §8).
  uint64_t cmp_before = ValueComparisonCount();
  BT_RETURN_NOT_OK(BuildQueryTree());
  BuildStreams();

  while (true) {
    // Batch-boundary guard sample (DESIGN.md §9): full check every ~512
    // consumed stream elements, cheap probe otherwise.
    if (guard_ != nullptr &&
        (guard_->Tripped() ||
         ((stats_.stream_elements & 0x1FF) == 0x1FF && !guard_->Check()))) {
      return guard_->status();
    }
    int qi = GetNextNode(0);
    QNode& q = qnodes_[qi];
    if (HeadEnded(q)) break;
    xml::NodeId node = Head(q);
    if (q.parent >= 0) {
      CleanStack(&qnodes_[q.parent], node);
    }
    if (q.parent < 0 || !qnodes_[q.parent].stack.empty()) {
      CleanStack(&q, node);
      int parent_top =
          q.parent < 0
              ? -1
              : static_cast<int>(qnodes_[q.parent].stack.size()) - 1;
      q.stack.emplace_back(node, parent_top);
      ++q.cursor;
      ++stats_.stream_elements;
      if (q.children.empty()) {
        ExpandPathSolutions(qi);
        q.stack.pop_back();
      }
    } else {
      ++q.cursor;
      ++stats_.stream_elements;
    }
  }

  MergePhase(result_vertex, result);
  stats_.value_cmps += ValueComparisonCount() - cmp_before;
  return Status::OK();
}

}  // namespace exec
}  // namespace blossomtree
