#include "exec/value_ops.h"

#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/strings.h"

namespace blossomtree {
namespace exec {

namespace {
thread_local uint64_t value_comparisons = 0;

/// One XPath value comparison over pre-parsed operands: numeric when both
/// sides parse as doubles, string collation otherwise.
bool ComparePrepared(bool left_numeric, double ln, std::string_view left,
                     xpath::CompareOp op, bool right_numeric, double rn,
                     std::string_view right) {
  if (left_numeric && right_numeric) {
    switch (op) {
      case xpath::CompareOp::kEq:
        return ln == rn;
      case xpath::CompareOp::kNeq:
        return ln != rn;
      case xpath::CompareOp::kLt:
        return ln < rn;
      case xpath::CompareOp::kLe:
        return ln <= rn;
      case xpath::CompareOp::kGt:
        return ln > rn;
      case xpath::CompareOp::kGe:
        return ln >= rn;
    }
  }
  int cmp = left.compare(right);
  switch (op) {
    case xpath::CompareOp::kEq:
      return cmp == 0;
    case xpath::CompareOp::kNeq:
      return cmp != 0;
    case xpath::CompareOp::kLt:
      return cmp < 0;
    case xpath::CompareOp::kLe:
      return cmp <= 0;
    case xpath::CompareOp::kGt:
      return cmp > 0;
    case xpath::CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}
}  // namespace

uint64_t ValueComparisonCount() { return value_comparisons; }

bool CompareValues(std::string_view left, xpath::CompareOp op,
                   std::string_view right) {
  ++value_comparisons;
  double ln = 0;
  double rn = 0;
  bool l_num = ParseDouble(left, &ln);
  bool r_num = ParseDouble(right, &rn);
  return ComparePrepared(l_num, ln, left, op, r_num, rn, right);
}

bool GeneralCompare(const xml::Document& doc,
                    std::span<const xml::NodeId> left,
                    xpath::CompareOp op,
                    std::span<const xml::NodeId> right) {
  if (left.empty() || right.empty()) return false;
  // Materialize and parse each right-side value once. The inner loop used
  // to rebuild doc.StringValue(r) (and re-parse it) for every left node —
  // O(|L|·|R|) string construction on what is already the hot path of
  // where-clause joins.
  struct RightValue {
    std::string text;
    double num = 0;
    bool numeric = false;
    uint32_t id = 0;  ///< Dictionary code of `text` (equality ops only).
  };
  std::vector<RightValue> rights;
  rights.reserve(right.size());
  for (xml::NodeId r : right) {
    RightValue rv;
    rv.text = doc.StringValue(r);
    rv.numeric = ParseDouble(rv.text, &rv.num);
    rights.push_back(std::move(rv));
  }
  // Equality dictionary: intern each distinct right-side string once, so
  // the quadratic loop compares 4-byte codes instead of re-walking string
  // bytes per (l, r) pair. Exact for =/!= because two strings are equal iff
  // their codes are (numeric-vs-numeric pairs keep the numeric compare, as
  // before); ordering ops still need real collation. Same ticks, same
  // early-return pair.
  constexpr uint32_t kNoId = static_cast<uint32_t>(-1);
  const bool dict =
      (op == xpath::CompareOp::kEq || op == xpath::CompareOp::kNeq) &&
      right.size() > 1;
  std::unordered_map<std::string_view, uint32_t> dict_ids;
  if (dict) {
    dict_ids.reserve(rights.size());
    for (RightValue& rv : rights) {
      // Keys view the rights' own text storage, which no longer moves.
      rv.id = dict_ids.emplace(std::string_view(rv.text),
                               static_cast<uint32_t>(dict_ids.size()))
                  .first->second;
    }
  }
  for (xml::NodeId l : left) {
    std::string lv = doc.StringValue(l);
    double ln = 0;
    bool l_num = ParseDouble(lv, &ln);
    if (dict) {
      auto it = dict_ids.find(std::string_view(lv));
      uint32_t l_id = it == dict_ids.end() ? kNoId : it->second;
      for (const RightValue& rv : rights) {
        ++value_comparisons;
        bool eq = (l_num && rv.numeric) ? ln == rv.num : l_id == rv.id;
        if (op == xpath::CompareOp::kEq ? eq : !eq) return true;
      }
      continue;
    }
    for (const RightValue& rv : rights) {
      // Counter parity with CompareValues: one tick per (l, r) pair tried.
      ++value_comparisons;
      if (ComparePrepared(l_num, ln, lv, op, rv.numeric, rv.num, rv.text)) {
        return true;
      }
    }
  }
  return false;
}

bool GeneralCompareLiteral(const xml::Document& doc,
                           std::span<const xml::NodeId> left,
                           xpath::CompareOp op, std::string_view literal) {
  double rn = 0;
  bool r_num = ParseDouble(literal, &rn);
  for (xml::NodeId l : left) {
    std::string lv = doc.StringValue(l);
    double ln = 0;
    bool l_num = ParseDouble(lv, &ln);
    ++value_comparisons;
    if (ComparePrepared(l_num, ln, lv, op, r_num, rn, literal)) return true;
  }
  return false;
}

bool DeepEqualNodes(const xml::Document& doc, xml::NodeId a, xml::NodeId b) {
  // Explicit work stack: deep-equal on a pathologically deep document must
  // not recurse once per level.
  std::vector<std::pair<xml::NodeId, xml::NodeId>> stack;
  stack.emplace_back(a, b);
  while (!stack.empty()) {
    auto [x, y] = stack.back();
    stack.pop_back();
    if (x == y) continue;
    if (doc.IsElement(x) != doc.IsElement(y)) return false;
    if (!doc.IsElement(x)) {
      if (doc.Text(x) != doc.Text(y)) return false;
      continue;
    }
    if (doc.Tag(x) != doc.Tag(y)) return false;
    auto attrs_x = doc.Attributes(x);
    auto attrs_y = doc.Attributes(y);
    if (attrs_x.size() != attrs_y.size()) return false;
    for (const auto& [name, value] : attrs_x) {
      std::string_view other;
      if (!doc.AttributeValue(y, name, &other) || other != value) {
        return false;
      }
    }
    xml::NodeId cx = doc.FirstChild(x);
    xml::NodeId cy = doc.FirstChild(y);
    while (cx != xml::kNullNode && cy != xml::kNullNode) {
      stack.emplace_back(cx, cy);
      cx = doc.NextSibling(cx);
      cy = doc.NextSibling(cy);
    }
    if (cx != xml::kNullNode || cy != xml::kNullNode) return false;
  }
  return true;
}

bool DeepEqualSequences(const xml::Document& doc,
                        std::span<const xml::NodeId> a,
                        std::span<const xml::NodeId> b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!DeepEqualNodes(doc, a[i], b[i])) return false;
  }
  return true;
}

}  // namespace exec
}  // namespace blossomtree
