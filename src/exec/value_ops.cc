#include "exec/value_ops.h"

#include "util/strings.h"

namespace blossomtree {
namespace exec {

namespace {
thread_local uint64_t value_comparisons = 0;
}  // namespace

uint64_t ValueComparisonCount() { return value_comparisons; }

bool CompareValues(std::string_view left, xpath::CompareOp op,
                   std::string_view right) {
  ++value_comparisons;
  double ln = 0;
  double rn = 0;
  if (ParseDouble(left, &ln) && ParseDouble(right, &rn)) {
    switch (op) {
      case xpath::CompareOp::kEq:
        return ln == rn;
      case xpath::CompareOp::kNeq:
        return ln != rn;
      case xpath::CompareOp::kLt:
        return ln < rn;
      case xpath::CompareOp::kLe:
        return ln <= rn;
      case xpath::CompareOp::kGt:
        return ln > rn;
      case xpath::CompareOp::kGe:
        return ln >= rn;
    }
  }
  int cmp = std::string_view(left).compare(right);
  switch (op) {
    case xpath::CompareOp::kEq:
      return cmp == 0;
    case xpath::CompareOp::kNeq:
      return cmp != 0;
    case xpath::CompareOp::kLt:
      return cmp < 0;
    case xpath::CompareOp::kLe:
      return cmp <= 0;
    case xpath::CompareOp::kGt:
      return cmp > 0;
    case xpath::CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

bool GeneralCompare(const xml::Document& doc,
                    const std::vector<xml::NodeId>& left,
                    xpath::CompareOp op,
                    const std::vector<xml::NodeId>& right) {
  for (xml::NodeId l : left) {
    std::string lv = doc.StringValue(l);
    for (xml::NodeId r : right) {
      if (CompareValues(lv, op, doc.StringValue(r))) return true;
    }
  }
  return false;
}

bool GeneralCompareLiteral(const xml::Document& doc,
                           const std::vector<xml::NodeId>& left,
                           xpath::CompareOp op, std::string_view literal) {
  for (xml::NodeId l : left) {
    if (CompareValues(doc.StringValue(l), op, literal)) return true;
  }
  return false;
}

bool DeepEqualNodes(const xml::Document& doc, xml::NodeId a, xml::NodeId b) {
  if (a == b) return true;
  if (doc.IsElement(a) != doc.IsElement(b)) return false;
  if (!doc.IsElement(a)) {
    return doc.Text(a) == doc.Text(b);
  }
  if (doc.Tag(a) != doc.Tag(b)) return false;
  auto attrs_a = doc.Attributes(a);
  auto attrs_b = doc.Attributes(b);
  if (attrs_a.size() != attrs_b.size()) return false;
  for (const auto& [name, value] : attrs_a) {
    std::string_view other;
    if (!doc.AttributeValue(b, name, &other) || other != value) return false;
  }
  xml::NodeId ca = doc.FirstChild(a);
  xml::NodeId cb = doc.FirstChild(b);
  while (ca != xml::kNullNode && cb != xml::kNullNode) {
    if (!DeepEqualNodes(doc, ca, cb)) return false;
    ca = doc.NextSibling(ca);
    cb = doc.NextSibling(cb);
  }
  return ca == xml::kNullNode && cb == xml::kNullNode;
}

bool DeepEqualSequences(const xml::Document& doc,
                        const std::vector<xml::NodeId>& a,
                        const std::vector<xml::NodeId>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!DeepEqualNodes(doc, a[i], b[i])) return false;
  }
  return true;
}

}  // namespace exec
}  // namespace blossomtree
