#include "pattern/paths.h"

namespace blossomtree {
namespace pattern {

std::string NokPath::ToString() const {
  std::string out;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) out += '/';
    out += steps[i];
  }
  return out;
}

namespace {

bool IsMandatoryChildStep(const Vertex& child) {
  if (child.axis != xpath::Axis::kChild) return false;
  if (child.mode != EdgeMode::kFor) return false;
  if (!child.tag.empty() && child.tag[0] == '@') return false;
  return true;
}

void Walk(const BlossomTree& tree, const NokTree& nok, VertexId v,
          std::vector<std::string>* prefix, std::vector<NokPath>* out) {
  prefix->push_back(tree.vertex(v).tag);
  bool descended = false;
  for (VertexId c : tree.vertex(v).children) {
    if (!nok.Contains(c)) continue;  // Cut //-edge: a different NoK.
    if (!IsMandatoryChildStep(tree.vertex(c))) continue;
    descended = true;
    Walk(tree, nok, c, prefix, out);
  }
  if (!descended) {
    out->push_back(NokPath{*prefix});
  }
  prefix->pop_back();
}

}  // namespace

std::vector<NokPath> ExtractMandatoryPaths(const BlossomTree& tree,
                                           const NokTree& nok) {
  std::vector<NokPath> out;
  std::vector<std::string> prefix;
  Walk(tree, nok, nok.root, &prefix, &out);
  return out;
}

}  // namespace pattern
}  // namespace blossomtree
