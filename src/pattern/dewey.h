#ifndef BLOSSOMTREE_PATTERN_DEWEY_H_
#define BLOSSOMTREE_PATTERN_DEWEY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace blossomtree {
namespace pattern {

/// \brief A Dewey ID addressing a returning node of a BlossomTree (paper
/// §3.2/§3.3): the path of 1-based child positions in the *returning tree*,
/// e.g. "1.1.2".
///
/// These are the parameters of the logical NestedList operators (π, σ, ⋈),
/// playing the role that column names play in relational algebra.
class DeweyId {
 public:
  DeweyId() = default;
  explicit DeweyId(std::vector<uint32_t> components)
      : components_(std::move(components)) {}

  /// \brief Parses "1.1.2". Components must be positive integers.
  static Result<DeweyId> Parse(std::string_view text);

  const std::vector<uint32_t>& components() const { return components_; }
  size_t depth() const { return components_.size(); }
  bool empty() const { return components_.empty(); }

  /// \brief The ID of this node's parent in the returning tree.
  DeweyId Parent() const;

  /// \brief The ID of this node's i-th (1-based) child.
  DeweyId Child(uint32_t i) const;

  /// \brief True iff this is a proper prefix of (i.e. an ancestor of) `other`.
  bool IsAncestorOf(const DeweyId& other) const;

  std::string ToString() const;

  bool operator==(const DeweyId& other) const {
    return components_ == other.components_;
  }
  bool operator<(const DeweyId& other) const {
    return components_ < other.components_;
  }

 private:
  std::vector<uint32_t> components_;
};

}  // namespace pattern
}  // namespace blossomtree

#endif  // BLOSSOMTREE_PATTERN_DEWEY_H_
