#ifndef BLOSSOMTREE_PATTERN_DECOMPOSE_H_
#define BLOSSOMTREE_PATTERN_DECOMPOSE_H_

#include <string>
#include <vector>

#include "pattern/blossom_tree.h"

namespace blossomtree {
namespace pattern {

/// \brief One NoK pattern tree: a maximal fragment of the BlossomTree whose
/// internal edges are all *local* axes (child / following-sibling), per the
/// hybrid approach of [22] (paper §2.1).
struct NokTree {
  VertexId root = kNoVertex;
  /// All member vertices (root first, then in DFS order).
  std::vector<VertexId> vertices;

  bool Contains(VertexId v) const;
};

/// \brief A global tree edge cut by the decomposition: `from` (inside one
/// NoK) connects to `to` (the root of another NoK) via a non-local axis.
struct Connection {
  VertexId from;
  VertexId to;
  xpath::Axis axis;   ///< Always kDescendant in the supported subset.
  EdgeMode mode;      ///< Mandatory (f) or optional (l) join semantics.
};

/// \brief The result of Algorithm 1: interconnected NoK pattern trees.
struct Decomposition {
  std::vector<NokTree> noks;
  std::vector<Connection> connections;
  /// nok_of_vertex[v] = index into `noks` containing vertex v.
  std::vector<uint32_t> nok_of_vertex;

  /// \brief Index of the NoK containing `v`.
  uint32_t NokOf(VertexId v) const { return nok_of_vertex[v]; }

  std::string ToString(const BlossomTree& tree) const;
};

/// \brief Decomposes a finalized BlossomTree into interconnected NoK pattern
/// trees (paper Algorithm 1): a DFS from each root that keeps local-axis
/// edges and re-roots the target of every global-axis edge as a new NoK.
/// Crossing edges are untouched (they connect vertices across NoKs and are
/// handled by the value/structural join operators).
Decomposition Decompose(const BlossomTree& tree);

}  // namespace pattern
}  // namespace blossomtree

#endif  // BLOSSOMTREE_PATTERN_DECOMPOSE_H_
