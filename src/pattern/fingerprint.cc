#include "pattern/fingerprint.h"

#include "xpath/ast.h"

namespace blossomtree {
namespace pattern {

namespace {

/// Injective string field: "<len>:<bytes>".
void AppendString(std::string_view s, std::string* out) {
  out->append(std::to_string(s.size()));
  out->push_back(':');
  out->append(s);
}

void AppendVertex(const BlossomTree& tree, const NokTree& nok, VertexId v,
                  std::string* out) {
  const Vertex& vx = tree.vertex(v);
  out->push_back('v');
  out->push_back('{');
  AppendString(vx.tag, out);
  out->push_back(',');
  // The incoming edge matters even for the NoK root: a root re-rooted by a
  // // connection matches descendants of its join partner, while a pattern
  // root anchors at document top level.
  out->append(xpath::AxisToString(vx.axis));
  out->push_back(',');
  out->push_back(vx.mode == EdgeMode::kLet ? 'l' : 'f');
  out->push_back(',');
  out->append(std::to_string(vx.position));
  if (vx.value.has_value()) {
    out->push_back(',');
    out->append(xpath::CompareOpToString(vx.value->op));
    AppendString(vx.value->literal, out);
  }
  if (vx.returning) {
    // The NestedList a scan emits is shaped by the global returning tree:
    // each entry's group vector is sized by the slot's children, and nesting
    // positions come from Dewey IDs — both can involve slots in *other*
    // NoKs (connected by //). Bake them into the key so two structurally
    // equal NoKs from differently shaped queries never collide.
    SlotId s = tree.SlotOfVertex(v);
    out->append(",ret@");
    out->append(tree.slot(s).dewey.ToString());
    out->append("[");
    for (SlotId child : tree.slot(s).children) {
      out->append(tree.slot(child).dewey.ToString());
      out->push_back(';');
    }
    out->push_back(']');
  }
  out->push_back('}');
  out->push_back('(');
  for (VertexId child : vx.children) {
    if (nok.Contains(child)) AppendVertex(tree, nok, child, out);
  }
  out->push_back(')');
}

}  // namespace

std::string CanonicalNok(const BlossomTree& tree, const NokTree& nok) {
  std::string out;
  out.reserve(64 * nok.vertices.size());
  out.append("nok:");
  AppendVertex(tree, nok, nok.root, &out);
  return out;
}

uint64_t FingerprintHash(std::string_view s) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis.
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime.
  }
  return h;
}

}  // namespace pattern
}  // namespace blossomtree
