#ifndef BLOSSOMTREE_PATTERN_FINGERPRINT_H_
#define BLOSSOMTREE_PATTERN_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "pattern/blossom_tree.h"
#include "pattern/decompose.h"

namespace blossomtree {
namespace pattern {

/// \brief Canonical serialization of one NoK pattern tree within its
/// finalized BlossomTree — the cache-key half of the NoK sub-result cache
/// (DESIGN.md §11).
///
/// Two NoKs with equal canonical strings produce byte-identical NestedList
/// streams from a NokScanOperator over the same document range. The string
/// therefore covers every input of the scan: per vertex (DFS from the NoK
/// root) the tag test, incoming axis and edge mode, positional and value
/// constraints, and — for returning vertices — the slot's Dewey ID plus its
/// child-slot Dewey IDs, because the emitted NestedList shape depends on the
/// *global* returning tree (group fan-out comes from slot children that may
/// live in other NoKs). Variable names are deliberately excluded: renaming
/// a blossom does not change the matched lists. String fields are emitted
/// length-prefixed so the encoding is injective.
std::string CanonicalNok(const BlossomTree& tree, const NokTree& nok);

/// \brief 64-bit FNV-1a of `s` — a compact digest for logs and stats; the
/// caches key on the full canonical string, never the hash, so a collision
/// can at worst waste an entry, not corrupt a result.
uint64_t FingerprintHash(std::string_view s);

}  // namespace pattern
}  // namespace blossomtree

#endif  // BLOSSOMTREE_PATTERN_FINGERPRINT_H_
