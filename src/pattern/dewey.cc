#include "pattern/dewey.h"

#include "util/strings.h"

namespace blossomtree {
namespace pattern {

Result<DeweyId> DeweyId::Parse(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty Dewey ID");
  }
  std::vector<uint32_t> components;
  for (std::string_view part : Split(text, '.')) {
    // Split never yields zero fields, so an empty part pinpoints a leading,
    // trailing, or doubled dot ("1..2", "1.") rather than falling through
    // to the generic integer error.
    if (part.empty()) {
      return Status::InvalidArgument("empty component in Dewey ID '" +
                                     std::string(text) + "'");
    }
    long long v = ParseNonNegativeInt(part);
    if (v <= 0) {
      return Status::InvalidArgument("bad Dewey ID '" + std::string(text) +
                                     "'");
    }
    // Components are stored as uint32_t; a value past UINT32_MAX would
    // silently wrap (4294967297 -> 1) and make distinct IDs compare equal.
    if (v > static_cast<long long>(UINT32_MAX)) {
      return Status::InvalidArgument("Dewey ID component out of range in '" +
                                     std::string(text) + "'");
    }
    components.push_back(static_cast<uint32_t>(v));
  }
  return DeweyId(std::move(components));
}

DeweyId DeweyId::Parent() const {
  if (components_.empty()) return DeweyId();
  std::vector<uint32_t> p(components_.begin(), components_.end() - 1);
  return DeweyId(std::move(p));
}

DeweyId DeweyId::Child(uint32_t i) const {
  std::vector<uint32_t> c = components_;
  c.push_back(i);
  return DeweyId(std::move(c));
}

bool DeweyId::IsAncestorOf(const DeweyId& other) const {
  if (components_.size() >= other.components_.size()) return false;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] != other.components_[i]) return false;
  }
  return true;
}

std::string DeweyId::ToString() const {
  std::string out;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += '.';
    out += std::to_string(components_[i]);
  }
  return out;
}

}  // namespace pattern
}  // namespace blossomtree
