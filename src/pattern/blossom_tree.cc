#include "pattern/blossom_tree.h"

#include <algorithm>
#include <functional>

namespace blossomtree {
namespace pattern {

const char* CrossKindToString(CrossKind kind) {
  switch (kind) {
    case CrossKind::kDocBefore:
      return "<<";
    case CrossKind::kValueEq:
      return "=";
    case CrossKind::kValueNeq:
      return "!=";
    case CrossKind::kDeepEqual:
      return "deep-equal";
    case CrossKind::kIs:
      return "is";
    case CrossKind::kDescendant:
      return "//";
  }
  return "?";
}

VertexId BlossomTree::AddRoot(std::string tag) {
  VertexId id = static_cast<VertexId>(vertices_.size());
  Vertex v;
  v.tag = std::move(tag);
  vertices_.push_back(std::move(v));
  roots_.push_back(id);
  return id;
}

VertexId BlossomTree::AddChild(VertexId parent, std::string tag,
                               xpath::Axis axis, EdgeMode mode) {
  VertexId id = static_cast<VertexId>(vertices_.size());
  Vertex v;
  v.tag = std::move(tag);
  v.parent = parent;
  v.axis = axis;
  v.mode = mode;
  vertices_.push_back(std::move(v));
  vertices_[parent].children.push_back(id);
  return id;
}

void BlossomTree::AddCrossEdge(VertexId left, VertexId right, CrossKind kind,
                               bool negated) {
  cross_edges_.push_back(CrossEdge{left, right, kind, negated});
}

void BlossomTree::MarkReturning(VertexId v, std::string variable) {
  vertices_[v].returning = true;
  if (!variable.empty()) vertices_[v].variable = std::move(variable);
}

Status BlossomTree::Finalize() {
  if (finalized_) return Status::OK();
  vertex_slot_.assign(vertices_.size(), kNoSlot);
  slots_.clear();
  top_slots_.clear();

  // Build the returning tree: each returning vertex's parent is its nearest
  // returning proper ancestor (through tree edges); top-level returning
  // vertices hang off an artificial super-root (paper §3.3).
  //
  // Slots are created in a DFS over the pattern forest, which makes sibling
  // order deterministic (the "arbitrarily fixed order" of paper Example 3).
  std::function<Status(VertexId, SlotId)> visit = [&](VertexId v,
                                                      SlotId parent_slot)
      -> Status {
    SlotId my_slot = parent_slot;
    if (vertices_[v].returning) {
      my_slot = static_cast<SlotId>(slots_.size());
      Slot s;
      s.vertex = v;
      s.parent = parent_slot;
      // Slot mode: kLet if any pattern edge between this vertex and its
      // returning-tree parent (exclusive) is an l-edge.
      s.mode = EdgeMode::kFor;
      VertexId stop =
          parent_slot == kNoSlot ? kNoVertex : slots_[parent_slot].vertex;
      for (VertexId w = v; w != stop && w != kNoVertex;
           w = vertices_[w].parent) {
        if (vertices_[w].mode == EdgeMode::kLet &&
            vertices_[w].parent != kNoVertex) {
          s.mode = EdgeMode::kLet;
          break;
        }
      }
      slots_.push_back(std::move(s));
      vertex_slot_[v] = my_slot;
      if (parent_slot == kNoSlot) {
        top_slots_.push_back(my_slot);
      } else {
        slots_[parent_slot].children.push_back(my_slot);
      }
    }
    for (VertexId c : vertices_[v].children) {
      BT_RETURN_NOT_OK(visit(c, my_slot));
    }
    return Status::OK();
  };
  for (VertexId r : roots_) {
    BT_RETURN_NOT_OK(visit(r, kNoSlot));
  }

  // Dewey numbering: a single top slot is "1"; multiple top slots become
  // children 1.1, 1.2, ... of the artificial super-root.
  bool super_root = top_slots_.size() > 1;
  for (size_t i = 0; i < top_slots_.size(); ++i) {
    SlotId s = top_slots_[i];
    slots_[s].dewey =
        super_root ? DeweyId({1, static_cast<uint32_t>(i + 1)}) : DeweyId({1});
    std::function<void(SlotId)> number = [&](SlotId p) {
      for (size_t k = 0; k < slots_[p].children.size(); ++k) {
        SlotId c = slots_[p].children[k];
        slots_[c].dewey = slots_[p].dewey.Child(static_cast<uint32_t>(k + 1));
        number(c);
      }
    };
    number(s);
  }

  finalized_ = true;
  return Status::OK();
}

SlotId BlossomTree::SlotOfDewey(const DeweyId& id) const {
  for (SlotId s = 0; s < slots_.size(); ++s) {
    if (slots_[s].dewey == id) return s;
  }
  return kNoSlot;
}

SlotId BlossomTree::SlotOfVariable(const std::string& variable) const {
  VertexId v = VertexOfVariable(variable);
  return v == kNoVertex ? kNoSlot : vertex_slot_[v];
}

VertexId BlossomTree::VertexOfVariable(const std::string& variable) const {
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (vertices_[v].variable == variable) return v;
  }
  return kNoVertex;
}

void BlossomTree::AppendVertexString(VertexId v, int indent,
                                     std::string* out) const {
  const Vertex& vx = vertices_[v];
  out->append(static_cast<size_t>(indent) * 2, ' ');
  if (v != vx.parent && vx.parent != kNoVertex) {
    out->append(xpath::AxisToString(vx.axis));
    out->append(vx.mode == EdgeMode::kLet ? "(l) " : "(f) ");
  }
  out->append(vx.tag);
  if (vx.value) {
    out->append("[. ");
    out->append(xpath::CompareOpToString(vx.value->op));
    out->append(" \"");
    out->append(vx.value->literal);
    out->append("\"]");
  }
  if (vx.position > 0) {
    out->push_back('[');
    out->append(std::to_string(vx.position));
    out->push_back(']');
  }
  if (!vx.variable.empty()) {
    out->append(" ($");
    out->append(vx.variable);
    out->push_back(')');
  }
  if (vx.returning && finalized_ && vertex_slot_[v] != kNoSlot) {
    out->append(" <");
    out->append(slots_[vertex_slot_[v]].dewey.ToString());
    out->push_back('>');
  }
  out->push_back('\n');
  for (VertexId c : vx.children) {
    AppendVertexString(c, indent + 1, out);
  }
}

std::string BlossomTree::ToString() const {
  std::string out;
  for (VertexId r : roots_) {
    AppendVertexString(r, 0, &out);
  }
  for (const CrossEdge& e : cross_edges_) {
    out += "cross: ";
    out += vertices_[e.left].tag;
    out += " ";
    if (e.negated) out += "not ";
    out += CrossKindToString(e.kind);
    out += " ";
    out += vertices_[e.right].tag;
    out += "\n";
  }
  return out;
}

}  // namespace pattern
}  // namespace blossomtree
