#ifndef BLOSSOMTREE_PATTERN_BUILDER_H_
#define BLOSSOMTREE_PATTERN_BUILDER_H_

#include <memory>

#include "flwor/ast.h"
#include "pattern/blossom_tree.h"
#include "util/status.h"

namespace blossomtree {
namespace pattern {

/// \brief Translates a FLWOR expression into a finalized BlossomTree
/// (paper §3.1, Figure 1):
///
///  - each `for $v in <absolute path>` starts a new pattern tree rooted at
///    the virtual document root "~"; paths rooted at `$u` extend u's vertex;
///  - edges contributed by for-clauses are "f" (mandatory), by let-clauses
///    "l" (optional);
///  - step predicates become non-returning subtrees ([p] existence) or
///    value constraints ([p = "v"]) and positional constraints ([i]);
///  - where-clause comparisons between variables become crossing edges
///    (negation via not(...) is preserved on the edge);
///  - binding variables, crossing-edge endpoints, and endpoints of global
///    (//) tree edges are marked returning, then Dewey IDs are assigned.
Result<BlossomTree> BuildFromFlwor(const flwor::Flwor& flwor);

/// \brief Translates a standalone path expression (the Table 2/3 query
/// workloads) into a finalized BlossomTree whose result vertex is bound to
/// the variable "result".
Result<BlossomTree> BuildFromPath(const xpath::PathExpr& path);

/// \brief Builds from any parsed query expression (dispatches on kind;
/// constructors are searched for an embedded FLWOR).
Result<BlossomTree> BuildFromQuery(const flwor::Expr& expr);

}  // namespace pattern
}  // namespace blossomtree

#endif  // BLOSSOMTREE_PATTERN_BUILDER_H_
