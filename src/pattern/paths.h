#ifndef BLOSSOMTREE_PATTERN_PATHS_H_
#define BLOSSOMTREE_PATTERN_PATHS_H_

#include <string>
#include <vector>

#include "pattern/blossom_tree.h"
#include "pattern/decompose.h"

namespace blossomtree {
namespace pattern {

/// \brief One *mandatory* root-to-descendant chain of child-axis tag tests
/// inside a NoK pattern tree. `steps[0]` is the NoK root's tag ("~" for the
/// virtual root, "*" for a wildcard); each following step is a child-axis
/// tag test that a match must satisfy.
///
/// These are the canonical paths the DataGuide emptiness check consumes: if
/// no document path embeds one of them, the NoK has zero matches.
struct NokPath {
  std::vector<std::string> steps;

  std::string ToString() const;
};

/// \brief Extracts the mandatory child-axis paths of `nok` (canonical path
/// extraction for index pruning). The walk starts at the NoK root and
/// descends only edges that are *required for a match to exist*:
///   - child axis (following-sibling subtrees hang off the parent, not the
///     current node, so they terminate the chain),
///   - f-mode (l-edges are satisfied by the empty sequence),
///   - element tests (attribute steps `@a` are out-of-band on the element).
/// Value and positional constraints are ignored — every returned path is a
/// *necessary* condition, so absence from a path summary soundly proves the
/// NoK empty, while presence proves nothing.
///
/// Returns one path per leaf of the pruned chain tree; at minimum the
/// single-step path `[root tag]`.
std::vector<NokPath> ExtractMandatoryPaths(const BlossomTree& tree,
                                           const NokTree& nok);

}  // namespace pattern
}  // namespace blossomtree

#endif  // BLOSSOMTREE_PATTERN_PATHS_H_
