#include "pattern/decompose.h"

#include <algorithm>
#include <deque>

namespace blossomtree {
namespace pattern {

bool NokTree::Contains(VertexId v) const {
  return std::find(vertices.begin(), vertices.end(), v) != vertices.end();
}

Decomposition Decompose(const BlossomTree& tree) {
  Decomposition out;
  out.nok_of_vertex.assign(tree.NumVertices(), 0);

  // Algorithm 1: S holds roots of pending NoK trees; T (the DFS worklist)
  // holds members of the NoK under construction.
  std::deque<VertexId> S(tree.roots().begin(), tree.roots().end());
  while (!S.empty()) {
    VertexId u = S.front();
    S.pop_front();
    NokTree t;
    t.root = u;
    t.vertices.push_back(u);
    std::deque<VertexId> T;
    T.push_back(u);
    while (!T.empty()) {
      VertexId w = T.front();
      T.pop_front();
      for (VertexId c : tree.vertex(w).children) {
        const Vertex& cv = tree.vertex(c);
        if (xpath::IsLocalAxis(cv.axis)) {
          t.vertices.push_back(c);
          T.push_back(c);
        } else {
          S.push_back(c);
          out.connections.push_back(Connection{w, c, cv.axis, cv.mode});
        }
      }
    }
    uint32_t idx = static_cast<uint32_t>(out.noks.size());
    for (VertexId v : t.vertices) out.nok_of_vertex[v] = idx;
    out.noks.push_back(std::move(t));
  }
  return out;
}

std::string Decomposition::ToString(const BlossomTree& tree) const {
  std::string out;
  for (size_t i = 0; i < noks.size(); ++i) {
    out += "NoK" + std::to_string(i) + ": {";
    for (size_t k = 0; k < noks[i].vertices.size(); ++k) {
      if (k > 0) out += ", ";
      out += tree.vertex(noks[i].vertices[k]).tag;
    }
    out += "}\n";
  }
  for (const Connection& c : connections) {
    out += "conn: " + tree.vertex(c.from).tag + " " +
           xpath::AxisToString(c.axis) + " " + tree.vertex(c.to).tag +
           (c.mode == EdgeMode::kLet ? " (l)" : " (f)") + "\n";
  }
  return out;
}

}  // namespace pattern
}  // namespace blossomtree
