#ifndef BLOSSOMTREE_PATTERN_BLOSSOM_TREE_H_
#define BLOSSOMTREE_PATTERN_BLOSSOM_TREE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pattern/dewey.h"
#include "util/status.h"
#include "xpath/ast.h"

namespace blossomtree {
namespace pattern {

using VertexId = uint32_t;
constexpr VertexId kNoVertex = static_cast<VertexId>(-1);

/// \brief Dense index of a returning node; the runtime addressing of a
/// DeweyId inside NestedLists.
using SlotId = uint32_t;
constexpr SlotId kNoSlot = static_cast<SlotId>(-1);

/// \brief Matching mode of a tree edge (paper Definition 1): "f" edges come
/// from for-clauses (mandatory — a match must exist), "l" edges from
/// let-clauses (optional — an empty sequence is a valid binding).
enum class EdgeMode : uint8_t {
  kFor,  ///< "f": mandatory.
  kLet,  ///< "l": optional.
};

/// \brief Value constraint attached to a vertex (from `[. = "v"]` etc.).
struct ValueConstraint {
  xpath::CompareOp op;
  std::string literal;
};

/// \brief One vertex of a BlossomTree: a tag-name test plus optional value
/// constraint, positional constraint, and blossom (variable binding).
struct Vertex {
  /// Tag name; "*" matches any element; "~" is the virtual document root
  /// (the node above the root element) used to anchor absolute paths.
  std::string tag;
  std::optional<ValueConstraint> value;
  long long position = 0;  ///< 1-based positional predicate; 0 = none.
  std::string variable;    ///< Blossom; empty if unbound.
  bool returning = false;

  // Incoming tree edge (kNoVertex parent for pattern-tree roots).
  VertexId parent = kNoVertex;
  xpath::Axis axis = xpath::Axis::kChild;
  EdgeMode mode = EdgeMode::kFor;

  std::vector<VertexId> children;

  bool IsVirtualRoot() const { return tag == "~"; }
  bool MatchesAnyTag() const { return tag == "*"; }
};

/// \brief Kinds of crossing-edge relationships (paper Definition 1: the
/// where-clause contributes structural, value-based, or mixed predicates
/// between blossoms).
enum class CrossKind : uint8_t {
  kDocBefore,  ///< `<<` (left precedes right in document order).
  kValueEq,    ///< `=` on atomized string values.
  kValueNeq,   ///< `!=`
  kDeepEqual,  ///< deep-equal(subtrees).
  kIs,         ///< node identity.
  kDescendant, ///< structural //-relationship stated in the where-clause.
};

const char* CrossKindToString(CrossKind kind);

/// \brief A crossing edge between two vertices.
struct CrossEdge {
  VertexId left;
  VertexId right;
  CrossKind kind;
  bool negated = false;  ///< Wrapped in not(...).
};

/// \brief Per-returning-node metadata derived by AssignDeweyIds.
struct Slot {
  VertexId vertex = kNoVertex;
  DeweyId dewey;
  SlotId parent = kNoSlot;        ///< Parent slot in the returning tree.
  std::vector<SlotId> children;   ///< Child slots, in Dewey order.
  /// Mode of the returning-tree edge from the parent slot: kLet if any
  /// pattern edge on the chain between the two vertices is an l-edge
  /// (optional matching / whole-sequence binding), else kFor.
  EdgeMode mode = EdgeMode::kFor;
};

/// \brief The BlossomTree (paper Definition 1): a forest of pattern trees
/// whose vertices carry constraints and blossoms, connected by crossing
/// edges.
///
/// Lifecycle: build vertices/edges (AddRoot/AddChild/AddCrossEdge, or via
/// pattern::BuildFromFlwor / BuildFromPath), then call Finalize() once to
/// compute the returning tree, Dewey IDs, and slots.
class BlossomTree {
 public:
  // -- Construction ----------------------------------------------------------

  /// \brief Adds a pattern-tree root. `tag` is "~" for absolute paths.
  VertexId AddRoot(std::string tag);

  /// \brief Adds a vertex under `parent` with the given incoming edge.
  VertexId AddChild(VertexId parent, std::string tag, xpath::Axis axis,
                    EdgeMode mode);

  void AddCrossEdge(VertexId left, VertexId right, CrossKind kind,
                    bool negated = false);

  /// \brief Marks `v` as a returning node, optionally binding a variable.
  void MarkReturning(VertexId v, std::string variable = "");

  /// \brief Computes the returning tree, assigns Dewey IDs and slots
  /// (paper §3.3: returning nodes are Dewey-numbered globally, with an
  /// artificial super-root when the forest has several top returning
  /// nodes). Idempotent; must be called before slot accessors.
  Status Finalize();

  // -- Accessors ---------------------------------------------------------------

  size_t NumVertices() const { return vertices_.size(); }
  const Vertex& vertex(VertexId v) const { return vertices_[v]; }
  Vertex& mutable_vertex(VertexId v) { return vertices_[v]; }
  const std::vector<VertexId>& roots() const { return roots_; }
  const std::vector<CrossEdge>& cross_edges() const { return cross_edges_; }

  bool finalized() const { return finalized_; }
  size_t NumSlots() const { return slots_.size(); }
  const Slot& slot(SlotId s) const { return slots_[s]; }

  /// \brief Slot of a returning vertex; kNoSlot if not returning.
  SlotId SlotOfVertex(VertexId v) const { return vertex_slot_[v]; }

  /// \brief Slot with the given Dewey ID, or kNoSlot.
  SlotId SlotOfDewey(const DeweyId& id) const;

  /// \brief Slot of the vertex bound to `variable`, or kNoSlot.
  SlotId SlotOfVariable(const std::string& variable) const;

  /// \brief Vertex bound to `variable`, or kNoVertex.
  VertexId VertexOfVariable(const std::string& variable) const;

  /// \brief Top-level slots (children of the artificial super-root, or the
  /// single root slot).
  const std::vector<SlotId>& top_slots() const { return top_slots_; }

  /// \brief Multi-line debug rendering of the whole tree.
  std::string ToString() const;

 private:
  void AppendVertexString(VertexId v, int indent, std::string* out) const;

  std::vector<Vertex> vertices_;
  std::vector<VertexId> roots_;
  std::vector<CrossEdge> cross_edges_;

  bool finalized_ = false;
  std::vector<Slot> slots_;
  std::vector<SlotId> vertex_slot_;
  std::vector<SlotId> top_slots_;
};

}  // namespace pattern
}  // namespace blossomtree

#endif  // BLOSSOMTREE_PATTERN_BLOSSOM_TREE_H_
