#include "pattern/builder.h"

#include <map>
#include <string>

namespace blossomtree {
namespace pattern {

namespace {

class Builder {
 public:
  Result<BlossomTree> FromFlwor(const flwor::Flwor& flwor) {
    for (const flwor::Binding& b : flwor.bindings) {
      EdgeMode mode = b.kind == flwor::Binding::Kind::kLet ? EdgeMode::kLet
                                                           : EdgeMode::kFor;
      BT_ASSIGN_OR_RETURN(VertexId v, AddPath(b.path, mode));
      if (vars_.count(b.var)) {
        return Status::InvalidArgument("variable $" + b.var + " rebound");
      }
      tree_.MarkReturning(v, b.var);
      vars_[b.var] = v;
    }
    if (flwor.where != nullptr) {
      BT_RETURN_NOT_OK(AddWhere(*flwor.where, /*negated=*/false));
    }
    return Finish();
  }

  Result<BlossomTree> FromPath(const xpath::PathExpr& path) {
    BT_ASSIGN_OR_RETURN(VertexId v, AddPath(path, EdgeMode::kFor));
    tree_.MarkReturning(v, "result");
    return Finish();
  }

 private:
  Result<BlossomTree> Finish() {
    // Mark global-edge endpoints returning: decomposition (Algorithm 1)
    // cuts these edges, and the joins that reconnect the NoK pieces address
    // their inputs by Dewey ID, so both endpoints need slots.
    for (VertexId v = 0; v < tree_.NumVertices(); ++v) {
      const Vertex& vx = tree_.vertex(v);
      if (vx.parent != kNoVertex && !xpath::IsLocalAxis(vx.axis)) {
        tree_.MarkReturning(v);
        if (!tree_.vertex(vx.parent).IsVirtualRoot()) {
          tree_.MarkReturning(vx.parent);
        }
      }
    }
    for (const CrossEdge& e : tree_.cross_edges()) {
      tree_.MarkReturning(e.left);
      tree_.MarkReturning(e.right);
    }
    BT_RETURN_NOT_OK(tree_.Finalize());
    return std::move(tree_);
  }

  /// Adds the vertices for `path`; returns the terminal vertex.
  Result<VertexId> AddPath(const xpath::PathExpr& path, EdgeMode mode) {
    VertexId anchor = kNoVertex;
    switch (path.start) {
      case xpath::PathExpr::StartKind::kRoot:
        // Each absolute path starts its own pattern tree (Figure 1 has two
        // roots, one per doc()-rooted for-clause).
        anchor = tree_.AddRoot("~");
        break;
      case xpath::PathExpr::StartKind::kVariable: {
        auto it = vars_.find(path.variable);
        if (it == vars_.end()) {
          return Status::InvalidArgument("unbound variable $" + path.variable);
        }
        anchor = it->second;
        break;
      }
      case xpath::PathExpr::StartKind::kContext:
        return Status::InvalidArgument(
            "context-relative path outside a predicate");
    }
    return Extend(anchor, path, /*first_step=*/0, mode, /*reuse=*/true);
  }

  /// Extends the pattern from `anchor` along path.steps[first_step..];
  /// returns the terminal vertex.
  Result<VertexId> Extend(VertexId anchor, const xpath::PathExpr& path,
                          size_t first_step, EdgeMode mode, bool reuse) {
    VertexId cur = anchor;
    for (size_t i = first_step; i < path.steps.size(); ++i) {
      const xpath::Step& step = path.steps[i];
      if (xpath::IsNavigationalOnlyAxis(step.axis)) {
        return Status::Unsupported(
            "axis '" + std::string(xpath::AxisToString(step.axis)) +
            "' cannot appear in a BlossomTree; evaluate navigationally");
      }
      if (step.axis == xpath::Axis::kSelf) {
        // "." — stay on the current vertex; predicates apply to it.
        BT_RETURN_NOT_OK(ApplyPredicates(cur, step));
        continue;
      }
      std::string tag = step.axis == xpath::Axis::kAttribute
                            ? "@" + step.name
                            : step.name;
      VertexId next = kNoVertex;
      if (reuse && step.predicates.empty()) {
        // Reuse an existing constraint-free child with the same tag/axis so
        // repeated references like $b/title (in where and return) share one
        // vertex, as in Figure 1.
        for (VertexId c : tree_.vertex(cur).children) {
          const Vertex& cv = tree_.vertex(c);
          if (cv.tag == tag && cv.axis == step.axis && cv.mode == mode &&
              !cv.value && cv.position == 0) {
            next = c;
            break;
          }
        }
      }
      if (next == kNoVertex) {
        next = tree_.AddChild(cur, tag, step.axis, mode);
        BT_RETURN_NOT_OK(ApplyPredicates(next, step));
      }
      cur = next;
    }
    return cur;
  }

  Status ApplyPredicates(VertexId v, const xpath::Step& step) {
    for (const xpath::Predicate& pred : step.predicates) {
      switch (pred.kind) {
        case xpath::Predicate::Kind::kPosition:
          tree_.mutable_vertex(v).position = pred.position;
          break;
        case xpath::Predicate::Kind::kExists: {
          // Existential subtree: mandatory for this vertex to match, never
          // returning.
          auto r = Extend(v, *pred.path, 0, EdgeMode::kFor, /*reuse=*/false);
          BT_RETURN_NOT_OK(r.status());
          break;
        }
        case xpath::Predicate::Kind::kValueCompare: {
          BT_ASSIGN_OR_RETURN(
              VertexId target,
              Extend(v, *pred.path, 0, EdgeMode::kFor, /*reuse=*/false));
          Vertex& tv = tree_.mutable_vertex(target);
          if (tv.value) {
            return Status::Unsupported(
                "multiple value constraints on one vertex");
          }
          tv.value = ValueConstraint{pred.op, pred.literal};
          break;
        }
      }
    }
    return Status::OK();
  }

  /// Walks the where-clause; conjunction components that are (possibly
  /// negated) comparisons between variable-rooted paths become crossing
  /// edges. Components the formalism does not cover (or-branches,
  /// literal comparisons) are simply not represented as edges — the engine
  /// re-evaluates the full where-clause on candidate tuples.
  Status AddWhere(const flwor::BoolExpr& expr, bool negated) {
    using flwor::BoolExpr;
    switch (expr.kind) {
      case BoolExpr::Kind::kAnd:
        if (negated) return Status::OK();  // not(a and b): not a conjunction.
        for (const auto& c : expr.children) {
          BT_RETURN_NOT_OK(AddWhere(*c, false));
        }
        return Status::OK();
      case BoolExpr::Kind::kNot:
        return AddWhere(*expr.children[0], !negated);
      case BoolExpr::Kind::kOr:
        return Status::OK();  // Residual; evaluated by the engine.
      case BoolExpr::Kind::kCompare:
        break;
    }
    if (expr.left.kind != flwor::Operand::Kind::kPath ||
        expr.right.kind != flwor::Operand::Kind::kPath) {
      return Status::OK();  // Literal comparison: residual.
    }
    auto lv = OperandVertex(expr.left.path);
    auto rv = OperandVertex(expr.right.path);
    if (!lv.ok() || !rv.ok()) {
      // Unresolvable operand (e.g. absolute path in where): residual.
      return Status::OK();
    }
    VertexId left = *lv;
    VertexId right = *rv;
    CrossKind kind;
    switch (expr.op) {
      case flwor::WhereOp::kDocBefore:
        kind = CrossKind::kDocBefore;
        break;
      case flwor::WhereOp::kDocAfter:
        kind = CrossKind::kDocBefore;
        std::swap(left, right);
        break;
      case flwor::WhereOp::kEq:
        kind = CrossKind::kValueEq;
        break;
      case flwor::WhereOp::kNeq:
        kind = CrossKind::kValueNeq;
        break;
      case flwor::WhereOp::kIs:
        kind = CrossKind::kIs;
        break;
      case flwor::WhereOp::kDeepEqual:
        kind = CrossKind::kDeepEqual;
        break;
      default:
        return Status::OK();
    }
    tree_.AddCrossEdge(left, right, kind, negated);
    return Status::OK();
  }

  Result<VertexId> OperandVertex(const xpath::PathExpr& path) {
    if (path.start != xpath::PathExpr::StartKind::kVariable) {
      return Status::Unsupported("operand is not variable-rooted");
    }
    auto it = vars_.find(path.variable);
    if (it == vars_.end()) {
      return Status::InvalidArgument("unbound variable $" + path.variable);
    }
    // Where-operand paths are *optional* (l-mode): a comparison operand may
    // evaluate to the empty sequence without disqualifying the tuple (e.g.
    // deep-equal over two empty author sequences is true — Example 2).
    // Figure 1 draws these edges bold, but XQuery semantics requires the
    // optional interpretation.
    return Extend(it->second, path, 0, EdgeMode::kLet, /*reuse=*/true);
  }

  BlossomTree tree_;
  std::map<std::string, VertexId> vars_;
};

const flwor::Flwor* FindFlwor(const flwor::Expr& expr) {
  switch (expr.kind) {
    case flwor::Expr::Kind::kFlwor:
      return expr.flwor.get();
    case flwor::Expr::Kind::kConstructor:
      for (const auto& item : expr.ctor->items) {
        if (item.expr != nullptr) {
          if (const flwor::Flwor* f = FindFlwor(*item.expr)) return f;
        }
      }
      return nullptr;
    case flwor::Expr::Kind::kPath:
      return nullptr;
  }
  return nullptr;
}

}  // namespace

Result<BlossomTree> BuildFromFlwor(const flwor::Flwor& flwor) {
  Builder b;
  return b.FromFlwor(flwor);
}

Result<BlossomTree> BuildFromPath(const xpath::PathExpr& path) {
  Builder b;
  return b.FromPath(path);
}

Result<BlossomTree> BuildFromQuery(const flwor::Expr& expr) {
  if (expr.kind == flwor::Expr::Kind::kPath) {
    return BuildFromPath(expr.path);
  }
  if (const flwor::Flwor* f = FindFlwor(expr)) {
    return BuildFromFlwor(*f);
  }
  return Status::Unsupported("query contains no FLWOR or path expression");
}

}  // namespace pattern
}  // namespace blossomtree
