file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_flwor.dir/bench_ablation_flwor.cc.o"
  "CMakeFiles/bench_ablation_flwor.dir/bench_ablation_flwor.cc.o.d"
  "bench_ablation_flwor"
  "bench_ablation_flwor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_flwor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
