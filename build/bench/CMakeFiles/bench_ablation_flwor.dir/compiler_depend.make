# Empty compiler generated dependencies file for bench_ablation_flwor.
# This may be replaced when dependencies are built.
