# Empty dependencies file for bench_ablation_pipeline_memory.
# This may be replaced when dependencies are built.
