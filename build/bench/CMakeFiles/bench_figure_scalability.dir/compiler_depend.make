# Empty compiler generated dependencies file for bench_figure_scalability.
# This may be replaced when dependencies are built.
