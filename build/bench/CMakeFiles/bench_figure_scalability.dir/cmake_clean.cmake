file(REMOVE_RECURSE
  "CMakeFiles/bench_figure_scalability.dir/bench_figure_scalability.cc.o"
  "CMakeFiles/bench_figure_scalability.dir/bench_figure_scalability.cc.o.d"
  "bench_figure_scalability"
  "bench_figure_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
