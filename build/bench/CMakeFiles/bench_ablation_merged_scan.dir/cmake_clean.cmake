file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_merged_scan.dir/bench_ablation_merged_scan.cc.o"
  "CMakeFiles/bench_ablation_merged_scan.dir/bench_ablation_merged_scan.cc.o.d"
  "bench_ablation_merged_scan"
  "bench_ablation_merged_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_merged_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
