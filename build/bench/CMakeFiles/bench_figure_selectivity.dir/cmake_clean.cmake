file(REMOVE_RECURSE
  "CMakeFiles/bench_figure_selectivity.dir/bench_figure_selectivity.cc.o"
  "CMakeFiles/bench_figure_selectivity.dir/bench_figure_selectivity.cc.o.d"
  "bench_figure_selectivity"
  "bench_figure_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
