# Empty dependencies file for bench_figure_selectivity.
# This may be replaced when dependencies are built.
