# Empty compiler generated dependencies file for bench_ablation_bnlj.
# This may be replaced when dependencies are built.
