file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bnlj.dir/bench_ablation_bnlj.cc.o"
  "CMakeFiles/bench_ablation_bnlj.dir/bench_ablation_bnlj.cc.o.d"
  "bench_ablation_bnlj"
  "bench_ablation_bnlj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bnlj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
