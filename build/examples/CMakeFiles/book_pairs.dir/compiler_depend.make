# Empty compiler generated dependencies file for book_pairs.
# This may be replaced when dependencies are built.
