file(REMOVE_RECURSE
  "CMakeFiles/book_pairs.dir/book_pairs.cpp.o"
  "CMakeFiles/book_pairs.dir/book_pairs.cpp.o.d"
  "book_pairs"
  "book_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/book_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
