file(REMOVE_RECURSE
  "CMakeFiles/dblp_queries.dir/dblp_queries.cpp.o"
  "CMakeFiles/dblp_queries.dir/dblp_queries.cpp.o.d"
  "dblp_queries"
  "dblp_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblp_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
