# Empty dependencies file for dblp_queries.
# This may be replaced when dependencies are built.
