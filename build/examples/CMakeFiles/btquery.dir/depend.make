# Empty dependencies file for btquery.
# This may be replaced when dependencies are built.
