# Empty compiler generated dependencies file for btquery.
# This may be replaced when dependencies are built.
