file(REMOVE_RECURSE
  "CMakeFiles/btquery.dir/btquery.cpp.o"
  "CMakeFiles/btquery.dir/btquery.cpp.o.d"
  "btquery"
  "btquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
