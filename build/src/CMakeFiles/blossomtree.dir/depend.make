# Empty dependencies file for blossomtree.
# This may be replaced when dependencies are built.
