
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/navigational.cc" "src/CMakeFiles/blossomtree.dir/baseline/navigational.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/baseline/navigational.cc.o.d"
  "/root/repo/src/datagen/d1_recursive.cc" "src/CMakeFiles/blossomtree.dir/datagen/d1_recursive.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/datagen/d1_recursive.cc.o.d"
  "/root/repo/src/datagen/d2_address.cc" "src/CMakeFiles/blossomtree.dir/datagen/d2_address.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/datagen/d2_address.cc.o.d"
  "/root/repo/src/datagen/d3_catalog.cc" "src/CMakeFiles/blossomtree.dir/datagen/d3_catalog.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/datagen/d3_catalog.cc.o.d"
  "/root/repo/src/datagen/d4_treebank.cc" "src/CMakeFiles/blossomtree.dir/datagen/d4_treebank.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/datagen/d4_treebank.cc.o.d"
  "/root/repo/src/datagen/d5_dblp.cc" "src/CMakeFiles/blossomtree.dir/datagen/d5_dblp.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/datagen/d5_dblp.cc.o.d"
  "/root/repo/src/datagen/datagen.cc" "src/CMakeFiles/blossomtree.dir/datagen/datagen.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/datagen/datagen.cc.o.d"
  "/root/repo/src/engine/binder.cc" "src/CMakeFiles/blossomtree.dir/engine/binder.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/engine/binder.cc.o.d"
  "/root/repo/src/engine/construct.cc" "src/CMakeFiles/blossomtree.dir/engine/construct.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/engine/construct.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/CMakeFiles/blossomtree.dir/engine/engine.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/engine/engine.cc.o.d"
  "/root/repo/src/engine/path_eval.cc" "src/CMakeFiles/blossomtree.dir/engine/path_eval.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/engine/path_eval.cc.o.d"
  "/root/repo/src/engine/where_eval.cc" "src/CMakeFiles/blossomtree.dir/engine/where_eval.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/engine/where_eval.cc.o.d"
  "/root/repo/src/exec/joins.cc" "src/CMakeFiles/blossomtree.dir/exec/joins.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/exec/joins.cc.o.d"
  "/root/repo/src/exec/merged_scan.cc" "src/CMakeFiles/blossomtree.dir/exec/merged_scan.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/exec/merged_scan.cc.o.d"
  "/root/repo/src/exec/nok_scan.cc" "src/CMakeFiles/blossomtree.dir/exec/nok_scan.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/exec/nok_scan.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/CMakeFiles/blossomtree.dir/exec/operator.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/exec/operator.cc.o.d"
  "/root/repo/src/exec/structural_join.cc" "src/CMakeFiles/blossomtree.dir/exec/structural_join.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/exec/structural_join.cc.o.d"
  "/root/repo/src/exec/twig_semijoin.cc" "src/CMakeFiles/blossomtree.dir/exec/twig_semijoin.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/exec/twig_semijoin.cc.o.d"
  "/root/repo/src/exec/twigstack.cc" "src/CMakeFiles/blossomtree.dir/exec/twigstack.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/exec/twigstack.cc.o.d"
  "/root/repo/src/exec/value_ops.cc" "src/CMakeFiles/blossomtree.dir/exec/value_ops.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/exec/value_ops.cc.o.d"
  "/root/repo/src/flwor/parser.cc" "src/CMakeFiles/blossomtree.dir/flwor/parser.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/flwor/parser.cc.o.d"
  "/root/repo/src/nestedlist/nested_list.cc" "src/CMakeFiles/blossomtree.dir/nestedlist/nested_list.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/nestedlist/nested_list.cc.o.d"
  "/root/repo/src/nestedlist/ops.cc" "src/CMakeFiles/blossomtree.dir/nestedlist/ops.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/nestedlist/ops.cc.o.d"
  "/root/repo/src/opt/cost_model.cc" "src/CMakeFiles/blossomtree.dir/opt/cost_model.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/opt/cost_model.cc.o.d"
  "/root/repo/src/opt/planner.cc" "src/CMakeFiles/blossomtree.dir/opt/planner.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/opt/planner.cc.o.d"
  "/root/repo/src/pattern/blossom_tree.cc" "src/CMakeFiles/blossomtree.dir/pattern/blossom_tree.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/pattern/blossom_tree.cc.o.d"
  "/root/repo/src/pattern/builder.cc" "src/CMakeFiles/blossomtree.dir/pattern/builder.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/pattern/builder.cc.o.d"
  "/root/repo/src/pattern/decompose.cc" "src/CMakeFiles/blossomtree.dir/pattern/decompose.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/pattern/decompose.cc.o.d"
  "/root/repo/src/pattern/dewey.cc" "src/CMakeFiles/blossomtree.dir/pattern/dewey.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/pattern/dewey.cc.o.d"
  "/root/repo/src/storage/page_store.cc" "src/CMakeFiles/blossomtree.dir/storage/page_store.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/storage/page_store.cc.o.d"
  "/root/repo/src/storage/succinct.cc" "src/CMakeFiles/blossomtree.dir/storage/succinct.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/storage/succinct.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/blossomtree.dir/util/status.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/util/status.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/CMakeFiles/blossomtree.dir/util/strings.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/util/strings.cc.o.d"
  "/root/repo/src/workload/queries.cc" "src/CMakeFiles/blossomtree.dir/workload/queries.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/workload/queries.cc.o.d"
  "/root/repo/src/xml/document.cc" "src/CMakeFiles/blossomtree.dir/xml/document.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/xml/document.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/CMakeFiles/blossomtree.dir/xml/parser.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/xml/parser.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/CMakeFiles/blossomtree.dir/xml/serializer.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/xml/serializer.cc.o.d"
  "/root/repo/src/xpath/ast.cc" "src/CMakeFiles/blossomtree.dir/xpath/ast.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/xpath/ast.cc.o.d"
  "/root/repo/src/xpath/parser.cc" "src/CMakeFiles/blossomtree.dir/xpath/parser.cc.o" "gcc" "src/CMakeFiles/blossomtree.dir/xpath/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
