file(REMOVE_RECURSE
  "libblossomtree.a"
)
