# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;bt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(xml_test "/root/repo/build/tests/xml_test")
set_tests_properties(xml_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;10;bt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;bt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(xpath_test "/root/repo/build/tests/xpath_test")
set_tests_properties(xpath_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;13;bt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(datagen_test "/root/repo/build/tests/datagen_test")
set_tests_properties(datagen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;bt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(flwor_test "/root/repo/build/tests/flwor_test")
set_tests_properties(flwor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;bt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pattern_test "/root/repo/build/tests/pattern_test")
set_tests_properties(pattern_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;16;bt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nestedlist_test "/root/repo/build/tests/nestedlist_test")
set_tests_properties(nestedlist_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;18;bt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(exec_test "/root/repo/build/tests/exec_test")
set_tests_properties(exec_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;19;bt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(engine_test "/root/repo/build/tests/engine_test")
set_tests_properties(engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;23;bt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(opt_test "/root/repo/build/tests/opt_test")
set_tests_properties(opt_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;26;bt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;27;bt_add_test;/root/repo/tests/CMakeLists.txt;0;")
