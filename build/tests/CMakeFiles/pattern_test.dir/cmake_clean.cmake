file(REMOVE_RECURSE
  "CMakeFiles/pattern_test.dir/pattern/builder_test.cc.o"
  "CMakeFiles/pattern_test.dir/pattern/builder_test.cc.o.d"
  "CMakeFiles/pattern_test.dir/pattern/decompose_test.cc.o"
  "CMakeFiles/pattern_test.dir/pattern/decompose_test.cc.o.d"
  "CMakeFiles/pattern_test.dir/pattern/dewey_test.cc.o"
  "CMakeFiles/pattern_test.dir/pattern/dewey_test.cc.o.d"
  "pattern_test"
  "pattern_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
