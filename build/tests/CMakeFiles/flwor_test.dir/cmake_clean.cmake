file(REMOVE_RECURSE
  "CMakeFiles/flwor_test.dir/flwor/parser_test.cc.o"
  "CMakeFiles/flwor_test.dir/flwor/parser_test.cc.o.d"
  "flwor_test"
  "flwor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flwor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
