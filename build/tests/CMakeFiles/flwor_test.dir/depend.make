# Empty dependencies file for flwor_test.
# This may be replaced when dependencies are built.
