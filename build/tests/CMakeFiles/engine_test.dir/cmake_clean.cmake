file(REMOVE_RECURSE
  "CMakeFiles/engine_test.dir/engine/binder_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/binder_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/construct_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/construct_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/engine_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/engine_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/path_eval_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/path_eval_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/reverse_axes_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/reverse_axes_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/where_eval_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/where_eval_test.cc.o.d"
  "engine_test"
  "engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
