file(REMOVE_RECURSE
  "CMakeFiles/nestedlist_test.dir/nestedlist/nested_list_test.cc.o"
  "CMakeFiles/nestedlist_test.dir/nestedlist/nested_list_test.cc.o.d"
  "nestedlist_test"
  "nestedlist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nestedlist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
