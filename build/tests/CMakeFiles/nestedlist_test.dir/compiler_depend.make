# Empty compiler generated dependencies file for nestedlist_test.
# This may be replaced when dependencies are built.
