
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/exec/joins_test.cc" "tests/CMakeFiles/exec_test.dir/exec/joins_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec/joins_test.cc.o.d"
  "/root/repo/tests/exec/merged_scan_test.cc" "tests/CMakeFiles/exec_test.dir/exec/merged_scan_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec/merged_scan_test.cc.o.d"
  "/root/repo/tests/exec/nok_scan_test.cc" "tests/CMakeFiles/exec_test.dir/exec/nok_scan_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec/nok_scan_test.cc.o.d"
  "/root/repo/tests/exec/structural_join_test.cc" "tests/CMakeFiles/exec_test.dir/exec/structural_join_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec/structural_join_test.cc.o.d"
  "/root/repo/tests/exec/twig_semijoin_test.cc" "tests/CMakeFiles/exec_test.dir/exec/twig_semijoin_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec/twig_semijoin_test.cc.o.d"
  "/root/repo/tests/exec/twigstack_test.cc" "tests/CMakeFiles/exec_test.dir/exec/twigstack_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec/twigstack_test.cc.o.d"
  "/root/repo/tests/exec/value_ops_test.cc" "tests/CMakeFiles/exec_test.dir/exec/value_ops_test.cc.o" "gcc" "tests/CMakeFiles/exec_test.dir/exec/value_ops_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/blossomtree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
