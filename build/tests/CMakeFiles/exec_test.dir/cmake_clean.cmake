file(REMOVE_RECURSE
  "CMakeFiles/exec_test.dir/exec/joins_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/joins_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/merged_scan_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/merged_scan_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/nok_scan_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/nok_scan_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/structural_join_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/structural_join_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/twig_semijoin_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/twig_semijoin_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/twigstack_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/twigstack_test.cc.o.d"
  "CMakeFiles/exec_test.dir/exec/value_ops_test.cc.o"
  "CMakeFiles/exec_test.dir/exec/value_ops_test.cc.o.d"
  "exec_test"
  "exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
